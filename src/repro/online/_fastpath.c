/* Optional C fast path for the distributed-negotiation inner loop.
 *
 * The negotiation protocol evaluates millions of tiny (R x P x t)
 * marginal-gain tensors per online run (R = matched sample rows, P =
 * policies, t = receivable tasks; all of order 10).  At that size the
 * arithmetic is trivial and the cost is per-call NumPy dispatch, so the
 * hot operations are provided here as single C calls:
 *
 *   fill(view, tens, rows, dirty, cols, add, E) -> None
 *     Refresh rows of the clipped-utility difference tensor
 *     ``tens[r, p, j] = min((e + a) / E, 1) - min(e / E, 1)`` from the
 *     agent's energy ``view`` — the gather plus element-wise stage of
 *     the linear-bounded gain kernel.  ``dirty`` selects row positions
 *     (None = all rows).
 *
 *   finish(rg, total_samples) -> (best_policy, best_total)
 *     Column-sum the per-row gains, normalize, and take the first
 *     maximum (np.argmax semantics).
 *
 *   fold(views, obs, rows, cols, vals) -> None
 *     Scatter-add a committed policy's per-task energy ``vals`` into the
 *     (receiver, sample-row, task-column) block of the stacked (n, S, m)
 *     views array.
 *
 *   fill_batch(jobs) -> None
 *     Run ``fill`` for a whole advertisement round in one call: ``jobs``
 *     is a list of 7-tuples, each holding one agent's ``fill`` argument
 *     vector.  Per-agent results are identical to per-agent ``fill``
 *     calls (agents touch disjoint tensors), this just amortizes the
 *     Python call overhead across the window's agents.
 *
 *   finish_batch(rgs, total_samples) -> list[(best_policy, best_total)]
 *     ``finish`` over a list of per-agent row-gain matrices.
 *
 * Numerical contract: every operation here is bit-for-bit identical to
 * the pure NumPy reference path in distributed.py.  Element-wise ops
 * (add, divide, clip, subtract) are the same IEEE-754 double ops; the
 * column sum replicates NumPy's sequential row accumulation for an
 * axis-0 reduction with >= 2 columns; and the weighted sum over tasks —
 * whose BLAS-blocked ordering is not reproducible in portable C — is
 * deliberately left to NumPy (``np.matmul(tens, w, out=rg)`` in the
 * caller).  Compile with -ffp-contract=off so no FMA contraction changes
 * rounding; see _ckernel.py for the build and the fallback story.
 *
 * The callers in distributed.py own the argument contract: C-contiguous
 * float64 view/tens/rg/add/E/vals, C-contiguous intp rows/cols,
 * ``dirty`` a list of row positions or None, ``obs`` a list of receiver
 * indices.  Only cheap structural checks are repeated here.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#include <numpy/arrayobject.h>

/* Fixed scratch capacity; the Python side falls back to NumPy for
 * instances larger than this (never hit by the paper's scales). */
#define FP_MAX_DIM 512

/* Core of fill(); `args` is the 7-element argument vector.  Returns 0 on
 * success, -1 with a Python exception set on failure. */
static int
fill_impl(PyObject *const *args)
{
    PyArrayObject *view = (PyArrayObject *)args[0];
    PyArrayObject *tens = (PyArrayObject *)args[1];
    PyArrayObject *rows = (PyArrayObject *)args[2];
    PyObject *dirty = args[3];
    PyArrayObject *cols = (PyArrayObject *)args[4];
    PyArrayObject *add = (PyArrayObject *)args[5];
    PyArrayObject *E = (PyArrayObject *)args[6];

    const npy_intp R = PyArray_DIM(tens, 0);
    const npy_intp P = PyArray_DIM(tens, 1);
    const npy_intp t = PyArray_DIM(tens, 2);
    const npy_intp m = PyArray_DIM(view, 1);
    if (t > FP_MAX_DIM) {
        PyErr_SetString(PyExc_ValueError, "fill: too many task columns");
        return -1;
    }

    const double *view_d = (const double *)PyArray_DATA(view);
    double *tens_d = (double *)PyArray_DATA(tens);
    const npy_intp *rows_d = (const npy_intp *)PyArray_DATA(rows);
    const npy_intp *cols_d = (const npy_intp *)PyArray_DATA(cols);
    const double *add_d = (const double *)PyArray_DATA(add);
    const double *E_d = (const double *)PyArray_DATA(E);

    double ev[FP_MAX_DIM];   /* current energy per column */
    double base[FP_MAX_DIM]; /* min(e / E, 1) per column  */

    npy_intp n_refresh;
    PyObject **dirty_items = NULL;
    if (dirty == Py_None) {
        n_refresh = R;
    } else {
        if (!PyList_Check(dirty)) {
            PyErr_SetString(PyExc_TypeError, "fill: dirty must be list|None");
            return -1;
        }
        n_refresh = PyList_GET_SIZE(dirty);
        dirty_items = ((PyListObject *)dirty)->ob_item;
    }
    for (npy_intp d = 0; d < n_refresh; d++) {
        npy_intp r;
        if (dirty_items == NULL) {
            r = d;
        } else {
            r = PyLong_AsSsize_t(dirty_items[d]);
            if (r < 0 || r >= R) {
                if (PyErr_Occurred()) {
                    return -1;
                }
                PyErr_SetString(PyExc_IndexError, "fill: dirty out of range");
                return -1;
            }
        }
        const double *vrow = view_d + rows_d[r] * m;
        for (npy_intp j = 0; j < t; j++) {
            const double e = vrow[cols_d[j]];
            const double b = e / E_d[j];
            ev[j] = e;
            base[j] = b > 1.0 ? 1.0 : b;
        }
        double *trow = tens_d + r * P * t;
        for (npy_intp p = 0; p < P; p++) {
            const double *ap = add_d + p * t;
            double *tp = trow + p * t;
            for (npy_intp j = 0; j < t; j++) {
                double x = (ev[j] + ap[j]) / E_d[j];
                if (x > 1.0) {
                    x = 1.0;
                }
                tp[j] = x - base[j];
            }
        }
    }
    return 0;
}

static PyObject *
fastpath_fill(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 7) {
        PyErr_SetString(PyExc_TypeError, "fill expects 7 arguments");
        return NULL;
    }
    if (fill_impl(args) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
fastpath_fill_batch(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 1) {
        PyErr_SetString(PyExc_TypeError, "fill_batch expects 1 argument");
        return NULL;
    }
    PyObject *jobs = args[0];
    if (!PyList_Check(jobs)) {
        PyErr_SetString(PyExc_TypeError, "fill_batch: jobs must be a list");
        return NULL;
    }
    const Py_ssize_t n_jobs = PyList_GET_SIZE(jobs);
    PyObject **items = ((PyListObject *)jobs)->ob_item;
    for (Py_ssize_t b = 0; b < n_jobs; b++) {
        PyObject *job = items[b];
        if (!PyTuple_Check(job) || PyTuple_GET_SIZE(job) != 7) {
            PyErr_SetString(PyExc_TypeError,
                            "fill_batch: each job must be a 7-tuple");
            return NULL;
        }
        if (fill_impl(((PyTupleObject *)job)->ob_item) < 0) {
            return NULL;
        }
    }
    Py_RETURN_NONE;
}

/* Core of finish(); writes the winner through `best`/`best_v`.  Returns 0
 * on success, -1 with a Python exception set on failure. */
static int
finish_impl(PyArrayObject *rg, double total_samples,
            Py_ssize_t *best, double *best_v)
{
    const npy_intp R = PyArray_DIM(rg, 0);
    const npy_intp P = PyArray_DIM(rg, 1);
    if (P < 2 || P > FP_MAX_DIM) {
        /* P == 1 would take NumPy's pairwise (contiguous-axis) summation
         * path, which this sequential loop does not replicate; callers
         * only negotiate partitions with at least two policies. */
        PyErr_SetString(PyExc_ValueError, "finish: policy count out of range");
        return -1;
    }
    const double *rg_d = (const double *)PyArray_DATA(rg);

    /* NumPy's axis-0 reduction over a C-contiguous (R, P>=2) array is a
     * sequential row accumulation — replicated exactly here. */
    double total[FP_MAX_DIM];
    for (npy_intp p = 0; p < P; p++) {
        total[p] = 0.0;
    }
    for (npy_intp r = 0; r < R; r++) {
        const double *rgr = rg_d + r * P;
        for (npy_intp p = 0; p < P; p++) {
            total[p] += rgr[p];
        }
    }
    npy_intp win = 0;
    double win_v = total[0] / total_samples;
    for (npy_intp p = 1; p < P; p++) {
        const double v = total[p] / total_samples;
        if (v > win_v) {
            win_v = v;
            win = p;
        }
    }
    *best = (Py_ssize_t)win;
    *best_v = win_v;
    return 0;
}

static PyObject *
fastpath_finish(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "finish expects 2 arguments");
        return NULL;
    }
    double total_samples = PyFloat_AsDouble(args[1]);
    if (total_samples == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    Py_ssize_t best;
    double best_v;
    if (finish_impl((PyArrayObject *)args[0], total_samples,
                    &best, &best_v) < 0) {
        return NULL;
    }
    return Py_BuildValue("nd", best, best_v);
}

static PyObject *
fastpath_finish_batch(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "finish_batch expects 2 arguments");
        return NULL;
    }
    PyObject *rgs = args[0];
    if (!PyList_Check(rgs)) {
        PyErr_SetString(PyExc_TypeError, "finish_batch: rgs must be a list");
        return NULL;
    }
    double total_samples = PyFloat_AsDouble(args[1]);
    if (total_samples == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    const Py_ssize_t n_jobs = PyList_GET_SIZE(rgs);
    PyObject **items = ((PyListObject *)rgs)->ob_item;
    PyObject *out = PyList_New(n_jobs);
    if (out == NULL) {
        return NULL;
    }
    for (Py_ssize_t b = 0; b < n_jobs; b++) {
        Py_ssize_t best;
        double best_v;
        if (finish_impl((PyArrayObject *)items[b], total_samples,
                        &best, &best_v) < 0) {
            Py_DECREF(out);
            return NULL;
        }
        PyObject *pair = Py_BuildValue("nd", best, best_v);
        if (pair == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, b, pair);
    }
    return out;
}

static PyObject *
fastpath_fold(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 5) {
        PyErr_SetString(PyExc_TypeError, "fold expects 5 arguments");
        return NULL;
    }
    PyArrayObject *views = (PyArrayObject *)args[0];
    PyObject *obs = args[1];
    PyArrayObject *rows = (PyArrayObject *)args[2];
    PyArrayObject *cols = (PyArrayObject *)args[3];
    PyArrayObject *vals = (PyArrayObject *)args[4];
    if (!PyList_Check(obs)) {
        PyErr_SetString(PyExc_TypeError, "fold: obs must be a list");
        return NULL;
    }

    const npy_intp n = PyArray_DIM(views, 0);
    const npy_intp S = PyArray_DIM(views, 1);
    const npy_intp m = PyArray_DIM(views, 2);
    const npy_intp R = PyArray_DIM(rows, 0);
    const npy_intp t = PyArray_DIM(cols, 0);

    double *views_d = (double *)PyArray_DATA(views);
    const npy_intp *rows_d = (const npy_intp *)PyArray_DATA(rows);
    const npy_intp *cols_d = (const npy_intp *)PyArray_DATA(cols);
    const double *vals_d = (const double *)PyArray_DATA(vals);

    const Py_ssize_t n_obs = PyList_GET_SIZE(obs);
    PyObject **obs_items = ((PyListObject *)obs)->ob_item;
    for (Py_ssize_t o = 0; o < n_obs; o++) {
        const npy_intp i = PyLong_AsSsize_t(obs_items[o]);
        if (i < 0 || i >= n) {
            if (PyErr_Occurred()) {
                return NULL;
            }
            PyErr_SetString(PyExc_IndexError, "fold: receiver out of range");
            return NULL;
        }
        double *base_o = views_d + i * S * m;
        for (npy_intp r = 0; r < R; r++) {
            double *vrow = base_o + rows_d[r] * m;
            for (npy_intp j = 0; j < t; j++) {
                vrow[cols_d[j]] += vals_d[j];
            }
        }
    }
    Py_RETURN_NONE;
}

static PyMethodDef fastpath_methods[] = {
    {"fill", (PyCFunction)(void (*)(void))fastpath_fill, METH_FASTCALL,
     "Refresh dirty rows of the clipped-utility difference tensor."},
    {"finish", (PyCFunction)(void (*)(void))fastpath_finish, METH_FASTCALL,
     "Column-sum per-row gains and return (best_policy, best_total)."},
    {"fill_batch", (PyCFunction)(void (*)(void))fastpath_fill_batch,
     METH_FASTCALL, "Run fill for a list of per-agent argument tuples."},
    {"finish_batch", (PyCFunction)(void (*)(void))fastpath_finish_batch,
     METH_FASTCALL, "Run finish over a list of per-agent row-gain arrays."},
    {"fold", (PyCFunction)(void (*)(void))fastpath_fold, METH_FASTCALL,
     "Scatter-add committed energy into stacked receiver views."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef fastpath_module = {
    PyModuleDef_HEAD_INIT, "_fastpath",
    "C fast path for distributed-negotiation kernels.", -1,
    fastpath_methods,
};

PyMODINIT_FUNC
PyInit__fastpath(void)
{
    import_array();
    return PyModule_Create(&fastpath_module);
}
