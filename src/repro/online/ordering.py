"""Linearizing the asynchronous negotiation — the Thm 6.1 DAG construction.

The first step of the paper's Theorem 6.1 proof (illustrated by its Fig. 3)
argues that the *asynchronous* per-charger commits of Algorithm 3 can be
organized into a global sequential order: locally, each charger observes
the commit order of itself and its neighbors as a directed chain; merging
the chains yields a directed graph that **must be acyclic** (a cycle would
mean some charger committed before itself), and any topological sort of it
is a sequential execution of the centralized locally-greedy algorithm that
produces the same selection.

This module materializes that construction from a real negotiation trace:

* :func:`commit_order_graph` builds the merged digraph (networkx) from the
  per-(slot, color) commit rounds recorded by
  :func:`repro.online.distributed.negotiate_window`;
* :func:`linearize_commits` topologically sorts it — raising if a cycle
  exists, which would falsify the proof's premise (and is asserted never
  to happen in the test suite).

Beyond testing the theory, the linearization is useful diagnostics: it
tells an operator in which *effective* order the fleet made its decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

__all__ = ["CommitEvent", "commit_order_graph", "linearize_commits"]


@dataclass(frozen=True)
class CommitEvent:
    """One committed S-C tuple, with the synchronous round it happened in."""

    charger: int
    slot: int
    color: int
    round_index: int
    policy: int


def commit_order_graph(
    events: list[CommitEvent], neighbors: list[frozenset[int]]
) -> "nx.DiGraph":
    """The merged local-order digraph of one negotiation.

    Nodes are commit events (as ``(charger, slot, color)`` triples); for
    every pair of *neighboring* chargers whose commits belong to the same
    (slot, color) negotiation, an edge points from the earlier round to the
    later one — exactly the "determined just behind" relation of the proof.
    Commits of non-neighbors in the same round are concurrent and get no
    edge (they are the parallel local maxima).
    """
    g = nx.DiGraph()
    for ev in events:
        g.add_node((ev.charger, ev.slot, ev.color), round_index=ev.round_index,
                   policy=ev.policy)
    by_negotiation: dict[tuple[int, int], list[CommitEvent]] = {}
    for ev in events:
        by_negotiation.setdefault((ev.slot, ev.color), []).append(ev)
    for (_k, _c), evs in by_negotiation.items():
        for a in evs:
            for b in evs:
                if a.round_index >= b.round_index:
                    continue
                if b.charger == a.charger or b.charger in neighbors[a.charger]:
                    g.add_edge(
                        (a.charger, a.slot, a.color), (b.charger, b.slot, b.color)
                    )
    return g


def linearize_commits(
    events: list[CommitEvent], neighbors: list[frozenset[int]]
) -> list[CommitEvent]:
    """A sequential order equivalent to the asynchronous execution.

    Topologically sorts :func:`commit_order_graph`; ties (concurrent
    commits of mutually non-neighboring chargers) break deterministically
    by (round, charger id).  Raises :class:`RuntimeError` if the graph has
    a cycle — impossible for traces produced by a correct negotiation, per
    the Thm 6.1 argument.
    """
    graph = commit_order_graph(events, neighbors)
    index = {(ev.charger, ev.slot, ev.color): ev for ev in events}
    try:
        order = list(
            nx.lexicographical_topological_sort(
                graph, key=lambda node: (graph.nodes[node]["round_index"], node)
            )
        )
    except nx.NetworkXUnfeasible as exc:  # pragma: no cover - proof violation
        raise RuntimeError(
            "commit-order graph contains a cycle; the negotiation trace is "
            "not linearizable (this contradicts Theorem 6.1's construction)"
        ) from exc
    return [index[node] for node in order]
