"""Distributed negotiation — paper Algorithm 3's core protocol.

Every charger runs the same local loop: for each future slot ``k`` (outer)
and color ``c`` (inner) it computes the best marginal gain ``ΔF*_i`` of its
own policies against its *local* view of task energies, broadcasts it to
its neighbors, and commits its policy when its advertised gain beats every
undecided neighbor's (ties break to the lower charger ID, as in the paper).
Committed policies are announced with an ``UPD`` message; receiving agents
fold the announced energy into their local views and recompute.

Why the local view is exact (paper §6.2, first part of the proof): the
marginal gain of charger ``i`` only involves tasks ``i`` can cover, and any
other charger able to touch those tasks is by definition a neighbor of
``i`` — so tracking self + neighbor commitments reproduces the global
marginal exactly, and the asynchronous commits linearize into the same
greedy order the centralized Algorithm 2 uses (the DAG/topological-sort
argument).  The tests pin distributed C=1 output against centralized C=1.

One interpretation note: Algorithm 3's pseudocode describes ``e_i^{k*}`` as
"a set of K_i scheduling policies"; we implement the per-(slot, color)
negotiation of single-slot policies, which matches the outer ``k`` / inner
``c`` loop structure, the per-slot partition matroid, and the equivalence
argument to Algorithm 2 (whose guarantee is order-invariant).

The Monte Carlo color draws (``C > 1``) are *public pseudorandomness*: all
agents derive the same ``(S, partitions)`` color table from a shared seed,
which needs no communication — only the seed — so locality is preserved.

Simulation note: radio delivery is accounted, not materialized.  Within a
round, every receiver of an advertisement would read the sender's latest
``(ΔF*, e*)`` — in the synchronous model because all views are current, in
the asynchronous model because a sleeping sender's *last* advertisement
stays standing with every neighbor.  A single shared table of standing
advertisements therefore reproduces each agent's inbox-derived knowledge
exactly (agents only ever consult entries of their own neighbors), while
the :class:`~repro.online.messaging.MessageStats` accounting — one
transmission plus ``|N(s_i)|`` deliveries per broadcast, the Fig. 16
quantities — is unchanged.  Energy views are likewise per-agent but
stacked in one array, so a commit's fold into every receiver's view is a
single batched scatter-add — see :class:`ChargerAgent`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.network import IDLE_POLICY, ChargerNetwork
from ..faults.bus import FaultStats, LossyMessageBus
from ..objective.haste import HasteObjective
from ..submodular.estimation import ColorSampler
from . import _ckernel
from .messaging import CMD_ACK, CMD_NULL, CMD_UPDATE, Message, MessageBus, MessageStats
from .ordering import CommitEvent

__all__ = [
    "ChargerAgent",
    "MatroidViolationError",
    "NegotiationResult",
    "negotiate_window",
]


class MatroidViolationError(RuntimeError):
    """The hard safety invariant tripped: a per-slot partition was about
    to receive a second policy.  Structurally unreachable — each agent
    owns its ``(charger, slot)`` partition and leaves the race after
    committing, no matter how divergent the views get — and the chaos
    suite asserts it never fires under any injected fault trace."""

MIN_GAIN: float = 1e-12

#: Compiled negotiation kernels (``_fastpath.c``), or ``None`` when no C
#: compiler is available / ``REPRO_DISABLE_CKERNEL`` is set.  The pure
#: NumPy code below remains the reference implementation; the tests pin
#: protocol-level equivalence between the two.
_C = _ckernel.load()


class ChargerAgent:
    """One charger's local negotiation state.

    ``energies`` is the agent's ``(S, m)`` view of per-task harvested
    energy under each Monte Carlo color sample, fed by its own commitments
    and the ``UPD`` messages of neighbors.  :func:`negotiate_window` hands
    each agent a row of one stacked ``(n, S, m)`` array so commit folds
    can be batched across receivers; the views themselves remain strictly
    per-agent.  Entries for tasks outside the agent's coverage may be
    stale — they are never read (see module docstring).
    """

    def __init__(
        self,
        index: int,
        objective: HasteObjective,
        num_samples: int,
        energies: np.ndarray | None = None,
    ) -> None:
        self.index = index
        self.objective = objective
        if energies is not None:
            if energies.shape != (num_samples, objective.network.m):
                raise ValueError("energies has the wrong shape")
            self.energies = energies
        else:
            self.energies = objective.zero_energy((num_samples,))
        #: cached own proposal for the active negotiation; valid until a
        #: commit changes this agent's energy view.
        self._proposal: tuple[float, int] | None = None
        #: sample-row bitmask of the active negotiation's matching rows.
        self._match_bits: int = 0
        #: the matching rows themselves, as plain ints for bit tests.
        self._row_list: list[int] = []
        self._rows: np.ndarray | None = None
        self._rows_col: np.ndarray | None = None
        #: per-matching-row gain vectors ``(R, P_i)`` for the active
        #: negotiation; rows are recomputed selectively (the kernel is
        #: row-independent, so a partial refresh is bitwise identical).
        self._row_gains: np.ndarray | None = None
        self._dirty_pos: set[int] = set()
        self._add: np.ndarray | None = None
        # Receivable-task bitmask — lets note_commit test column overlap
        # with one integer AND.  The linear-bounded sparse case also binds
        # the kernel's inputs here so best_candidate can inline it.
        cols = getattr(objective, "_cols", None)
        if cols is not None:
            bits = 0
            for t in cols[index]:
                bits |= 1 << int(t)
            self._col_bits: int | None = bits
        else:
            self._col_bits = None
        util_E = getattr(objective, "_util_E", None)
        self._fast = (
            objective.use_sparse
            and util_E is not None
            and util_E[index] is not None
        )
        self._ck = None
        if self._fast:
            self._cols_i = np.ascontiguousarray(objective._cols[index])
            self._E_i = np.ascontiguousarray(util_E[index])
            self._w_i = np.ascontiguousarray(objective._w_cols[index])
            num_policies = objective.network.policy_count(index)
            if (
                _C is not None
                and self._cols_i.dtype == np.intp
                and 2 <= num_policies <= 512
                and 0 < self._cols_i.size <= 512
            ):
                # Compiled kernels: the gather/element-wise stage and the
                # sum/argmax stage become one C call each; only the
                # BLAS-ordered weighted sum stays in NumPy, keeping the
                # result bit-identical to the pure NumPy path.  Buffers
                # are allocated once at the window's full sample count
                # and sliced per negotiation.
                self._ck = _C
                t = self._cols_i.size
                self._tens_full = np.empty((num_samples, num_policies, t))
                self._rg_full = np.empty((num_samples, num_policies))

    def reset_negotiation(
        self,
        slot: int,
        match_bits: int,
        match_rows: np.ndarray,
        row_list: list[int] | None = None,
        add: np.ndarray | None = None,
    ) -> None:
        """Start a fresh ``(slot, color)`` negotiation.

        ``row_list`` and ``add`` let :func:`negotiate_window` pass its
        window-level precomputations (the rows as plain ints, the agent's
        per-slot added-energy block); both are derived locally when absent.
        """
        self._proposal = None
        self._match_bits = match_bits
        self._rows = match_rows
        if row_list is not None:
            self._row_list = row_list
        else:
            self._row_list = [int(r) for r in match_rows]
        self._rows_col = None
        self._row_gains = None
        self._dirty_pos.clear()
        if self._fast:
            if add is not None:
                self._add = add
            else:
                self._add = self.objective.added_energy_cols(self.index, slot)

    def best_candidate(
        self, slot: int, match_rows: np.ndarray, total_samples: int
    ) -> tuple[float, int]:
        """Best ``(ΔF, policy)`` for this agent's partition at ``slot``.

        ``match_rows`` are the color-sample indices whose draw for the
        partition equals the color under negotiation; the expectation is
        normalized by the full sample count.  The result is cached between
        negotiation rounds: an agent's marginal only changes when a commit
        touches its view (:meth:`note_commit` invalidates), so
        re-advertising an untouched proposal skips the kernel entirely —
        the dominant per-arrival saving of the incremental runtime.
        """
        if self._proposal is not None:
            return self._proposal
        if not self._row_list:
            self._proposal = (0.0, IDLE_POLICY)
            return self._proposal
        rg = self._row_gains
        if self._ck is not None:
            # Compiled path, bit-identical to the NumPy branch below: C
            # refreshes the dirty rows of the difference tensor and later
            # the column-sum/argmax; the weighted sum over tasks keeps
            # NumPy's own matmul (its BLAS summation order is part of the
            # reference semantics — see _fastpath.c).
            n_rows = len(self._row_list)
            if rg is None:
                rg = self._row_gains = self._rg_full[:n_rows]
                dirty = None
            else:
                dirty = sorted(self._dirty_pos)
            tens = self._tens_full[:n_rows]
            self._ck.fill(
                self.energies, tens, self._rows, dirty,
                self._cols_i, self._add, self._E_i,
            )
            np.matmul(tens, self._w_i, out=rg)
            best_p, best_v = self._ck.finish(rg, total_samples)
            self._dirty_pos.clear()
            if best_p == IDLE_POLICY or best_v <= MIN_GAIN:
                self._proposal = (0.0, IDLE_POLICY)
            else:
                self._proposal = (best_v, best_p)
            return self._proposal
        if self._fast:
            # Inlined sparse linear-bounded kernel — the exact ufunc
            # sequence of HasteObjective._gains_cols, minus the per-call
            # dispatch layers (this runs millions of times per online run).
            E, add, w = self._E_i, self._add, self._w_i
            rows_col = self._rows_col
            if rows_col is None:
                rows_col = self._rows_col = self._rows[:, None]
            if rg is None:
                cur = self.energies[rows_col, self._cols_i]
                tens = cur[:, None, :]
                rg = self._row_gains = (
                    np.minimum((tens + add) / E, 1.0)
                    - np.minimum(tens / E, 1.0)
                ) @ w
            elif self._dirty_pos:
                # Refresh only the rows commits touched since the last
                # compute; the kernel treats rows independently, so the
                # patched array is bitwise equal to a fresh evaluation.
                pos = sorted(self._dirty_pos)
                cur = self.energies[rows_col[pos], self._cols_i]
                tens = cur[:, None, :]
                rg[pos] = (
                    np.minimum((tens + add) / E, 1.0)
                    - np.minimum(tens / E, 1.0)
                ) @ w
        else:
            if rg is None:
                rg = self._row_gains = self.objective.partition_gains_rows(
                    self.energies, match_rows, self.index, slot
                )
            elif self._dirty_pos:
                pos = sorted(self._dirty_pos)
                rg[pos] = self.objective.partition_gains_rows(
                    self.energies, match_rows[pos], self.index, slot
                )
        self._dirty_pos.clear()
        total = rg.sum(axis=0) / total_samples
        best_p = int(total.argmax())
        if best_p == IDLE_POLICY or total[best_p] <= MIN_GAIN:
            self._proposal = (0.0, IDLE_POLICY)
        else:
            self._proposal = (float(total[best_p]), best_p)
        return self._proposal

    def note_commit(self, sender_bits: int, changed_bits: int) -> None:
        """Maintain the caches after a neighbor's commit touched the view.

        The energy fold itself happens once, in :func:`negotiate_window`
        (see the class docstring); this method only decides whether the
        cached proposal survives.  It depends on the ``(matching rows ×
        receivable tasks)`` block alone, so a commit whose touched block
        is provably disjoint — the sender's matching rows miss ours, or
        its changed tasks miss our receivable set — leaves the proposal
        bit-identical and costs two integer ANDs.
        """
        if self._proposal is None and self._row_gains is None:
            return  # nothing cached to maintain
        if not (sender_bits & self._match_bits):
            return
        if self._col_bits is not None and not (changed_bits & self._col_bits):
            return
        self._proposal = None
        if self._col_bits is not None:
            # Only rows the commit actually wrote need a fresh gain vector.
            dirty = self._dirty_pos
            for p, r in enumerate(self._row_list):
                if (sender_bits >> r) & 1:
                    dirty.add(p)
        else:
            self._row_gains = None


def _store_proposal(agent: "ChargerAgent", best_p: int, best_v: float) -> None:
    """Commit a compiled-kernel result into the agent's proposal cache.

    Mirrors the tail of the compiled branch of
    :meth:`ChargerAgent.best_candidate` exactly.
    """
    agent._dirty_pos.clear()
    if best_p == IDLE_POLICY or best_v <= MIN_GAIN:
        agent._proposal = (0.0, IDLE_POLICY)
    else:
        agent._proposal = (best_v, best_p)


def _evaluate_pending(
    agents: dict[int, "ChargerAgent"],
    pending: list[int],
    slot: int,
    match: dict[int, np.ndarray],
    total_samples: int,
) -> None:
    """Evaluate every pending agent's proposal, batching the C kernel.

    The advertisement phase is embarrassingly parallel — each agent reads
    only its own energy view, and no view mutates until the commit phase —
    so the per-agent ``fill``/``finish`` C calls of one round collapse
    into one ``fill_batch``/``finish_batch`` pair, with the per-agent
    ``np.matmul`` weighted sums kept in between (their BLAS ordering is
    part of the reference semantics, exactly as in
    :meth:`ChargerAgent.best_candidate`).  Agents off the compiled path —
    ``REPRO_DISABLE_CKERNEL=1``, non-linear utilities, oversized blocks,
    or empty row lists — take :meth:`~ChargerAgent.best_candidate`, the
    bit-identical pure-NumPy reference.  Per-agent results are pinned
    identical to per-agent calls by ``tests/test_fastpath_equivalence.py``
    and the batch-equivalence suite.
    """
    batch: list[tuple] = []
    for i in pending:
        agent = agents[i]
        if agent._ck is None or not agent._row_list:
            agent.best_candidate(slot, match[i], total_samples)
            continue
        # Mirror best_candidate's compiled-path prep: once the rg buffer
        # is bound the evaluation must complete through the kernel path.
        n_rows = len(agent._row_list)
        rg = agent._row_gains
        if rg is None:
            rg = agent._row_gains = agent._rg_full[:n_rows]
            dirty = None
        else:
            dirty = sorted(agent._dirty_pos)
        tens = agent._tens_full[:n_rows]
        batch.append(
            (
                agent,
                rg,
                tens,
                (
                    agent.energies, tens, agent._rows, dirty,
                    agent._cols_i, agent._add, agent._E_i,
                ),
            )
        )
    if not batch:
        return
    ck = batch[0][0]._ck
    if len(batch) == 1 or not hasattr(ck, "fill_batch"):
        # One agent (no amortization to win) or a stale extension built
        # before the batched entry points existed: per-agent calls.
        for agent, rg, tens, job in batch:
            ck.fill(*job)
            np.matmul(tens, agent._w_i, out=rg)
            best_p, best_v = ck.finish(rg, total_samples)
            _store_proposal(agent, best_p, best_v)
        return
    ck.fill_batch([job for _agent, _rg, _tens, job in batch])
    for agent, rg, tens, _job in batch:
        np.matmul(tens, agent._w_i, out=rg)
    results = ck.finish_batch(
        [rg for _agent, rg, _tens, _job in batch], total_samples
    )
    for (agent, _rg, _tens, _job), (best_p, best_v) in zip(batch, results):
        _store_proposal(agent, best_p, best_v)


@dataclass
class NegotiationResult:
    """Outcome of negotiating one window of slots.

    ``table`` maps ``(charger, slot, color) → policy``; ``stats`` is the
    communication accounting for Fig. 16; ``commit_trace`` records every
    commit with its synchronous round, feeding the Thm 6.1 linearization
    (:mod:`repro.online.ordering`).
    """

    table: dict[tuple[int, int, int], int]
    stats: MessageStats
    sampler: ColorSampler = field(repr=False, default=None)
    commit_trace: list[CommitEvent] = field(repr=False, default_factory=list)
    #: Advertisement-phase accounting: how many proposals ran the gain
    #: kernel vs were answered from an agent's still-valid cache — the
    #: incremental runtime's dominant saving, surfaced for the registry.
    proposal_evals: int = 0
    proposal_cache_hits: int = 0
    #: Fault-layer accounting (the run-level totals of the shared
    #: injector) when the window negotiated under an active
    #: :class:`~repro.faults.model.FaultModel`; ``None`` on the lossless
    #: path, which is also what a null fault model routes to.
    fault_stats: FaultStats | None = field(repr=False, default=None)


def negotiate_window(
    network: ChargerNetwork,
    objective: HasteObjective,
    slots: list[int],
    num_colors: int,
    *,
    rng: np.random.Generator,
    num_samples: int = 24,
    initial_energies: np.ndarray | None = None,
    bus: MessageBus | None = None,
    async_dropout: float = 0.0,
    async_rng: np.random.Generator | None = None,
    fault_injector=None,
) -> NegotiationResult:
    """Run the distributed negotiation for every slot in ``slots``.

    ``initial_energies`` (shape ``(S, m)`` or ``(m,)`` broadcast to all
    samples) carries energy already banked by the executed past — the
    online runtime passes the pre-window harvest so marginal gains account
    for tasks' existing progress.

    ``async_dropout`` models the paper's "totally asynchronous" chargers:
    with probability ``async_dropout`` an undecided agent misses a round
    (does not recompute/broadcast; its last advertisement stays standing
    and it cannot commit that round).  The protocol's outcome quality is
    insensitive to this — commits still linearize into a greedy order
    (Thm 6.1's argument never assumes lock-step rounds) — and the tests
    assert it; rounds simply stretch.  ``0.0`` (default) is the synchronous
    model used for the Fig. 16 accounting.

    Returns the committed S-C table; drawing the final colors and building
    the schedule is the caller's job (the runtime shares draws between
    events to keep unchanged partitions stable).

    ``fault_injector`` (a :class:`~repro.faults.model.FaultInjector`)
    switches the window to the fault-tolerant protocol variant
    (:func:`_negotiate_window_faulty`): advertisements and UPD commits are
    materialized as per-receiver deliveries through a
    :class:`~repro.faults.bus.LossyMessageBus`, with stale-advertisement
    expiry, ack/retransmit for commits, and a per-negotiation round cap.
    An injector whose model :meth:`~repro.faults.model.FaultModel.is_null`
    routes straight through the lossless path — a zero-fault model is
    byte-identical to not having a fault layer at all (pinned by the
    chaos suite).  The negotiation ``rng`` stream is consumed identically
    on both paths (only the color sampler reads it); all fault
    randomness lives in the injector's own seeded stream.

    When :mod:`repro.obs` is enabled the window is traced as a
    ``negotiation.window`` span and the window's message/round/broadcast
    deltas — exactly this window's contribution to the returned
    :class:`~repro.online.messaging.MessageStats` — plus commit and
    proposal-cache counts are folded into the registry once, after the
    protocol finishes (nothing is recorded inside the round loop).  An
    active fault injector additionally folds its ``faults.*`` deltas
    (drops, retransmits, expiries, …) the same way.
    """
    faulty = fault_injector is not None and not fault_injector.model.is_null()
    base = bus.stats.as_dict() if bus is not None else None
    fault_base = fault_injector.stats.as_dict() if faulty else None
    with obs.span("negotiation.window", slots=len(slots), colors=num_colors):
        if faulty:
            if bus is not None:
                raise ValueError(
                    "fault_injector and an explicit bus are mutually "
                    "exclusive (the faulty path builds its own LossyMessageBus)"
                )
            if async_dropout != 0.0:
                raise ValueError(
                    "async_dropout is a lossless-path model; use the fault "
                    "model's crash schedule instead"
                )
            result = _negotiate_window_faulty(
                network,
                objective,
                slots,
                num_colors,
                rng=rng,
                num_samples=num_samples,
                initial_energies=initial_energies,
                injector=fault_injector,
            )
        else:
            result = _negotiate_window(
                network,
                objective,
                slots,
                num_colors,
                rng=rng,
                num_samples=num_samples,
                initial_energies=initial_energies,
                bus=bus,
                async_dropout=async_dropout,
                async_rng=async_rng,
            )
    if obs.enabled():
        obs.inc("negotiation.windows")
        for name, total in result.stats.as_dict().items():
            obs.inc(f"negotiation.{name}", total - (base[name] if base else 0))
        obs.inc("negotiation.commits", len(result.table))
        obs.inc("negotiation.proposal_evals", result.proposal_evals)
        obs.inc("negotiation.proposal_cache_hits", result.proposal_cache_hits)
        if faulty:
            for name, total in fault_injector.stats.as_dict().items():
                obs.inc(f"faults.{name}", total - fault_base[name])
    return result


def _negotiate_window(
    network: ChargerNetwork,
    objective: HasteObjective,
    slots: list[int],
    num_colors: int,
    *,
    rng: np.random.Generator,
    num_samples: int = 24,
    initial_energies: np.ndarray | None = None,
    bus: MessageBus | None = None,
    async_dropout: float = 0.0,
    async_rng: np.random.Generator | None = None,
) -> NegotiationResult:
    """The uninstrumented protocol body (see :func:`negotiate_window`)."""
    if not (0.0 <= async_dropout < 1.0):
        raise ValueError(f"async_dropout must be in [0, 1), got {async_dropout}")
    if async_dropout > 0.0 and async_rng is None:
        raise ValueError("async_dropout > 0 requires async_rng")
    participants = [
        i
        for i in range(network.n)
        if network.policy_count(i) > 1 and objective.relevant_slots(i).size > 0
    ]
    relevant = {
        i: set(int(k) for k in objective.relevant_slots(i)) for i in participants
    }
    part_keys = [
        (i, int(k)) for k in slots for i in participants if int(k) in relevant[i]
    ]
    sampler = ColorSampler(part_keys, num_colors, num_samples, rng)
    S = sampler.num_samples
    # Bulk-precompute every (partition, color) row match once per window —
    # identical to per-negotiation ``matching_samples`` lookups.
    group_index = {key: g for g, key in enumerate(part_keys)}
    all_matches = sampler.matches_by_color()
    # Window-level precompute per (color, group): the rows as a native-int
    # index array, as a plain-int list (for bit tests), and as a bitmask —
    # every negotiation touching the group reuses them.
    all_matches = [
        [np.ascontiguousarray(rows, dtype=np.intp) for rows in per_color]
        for per_color in all_matches
    ]
    row_lists = [
        [[int(r) for r in rows] for rows in per_color]
        for per_color in all_matches
    ]
    row_bits = [
        [sum(1 << r for r in rl) for rl in per_color]
        for per_color in row_lists
    ]

    # Per-agent energy views, stacked into one (n, S, m) array so a commit
    # can be folded into all its receivers' views with a single batched
    # scatter-add: every receiver gets the same addend at distinct index
    # triples, bit-identical to folding each inbox separately.  Views stay
    # per-agent — an agent that already decided a negotiation misses its
    # later commits, exactly as in the message-passing protocol.
    if initial_energies is not None:
        if initial_energies.ndim == 1:
            initial_energies = initial_energies[None, None, :]
        else:
            initial_energies = initial_energies[None, :, :]
        views = np.broadcast_to(
            initial_energies, (network.n, S, network.m)
        ).copy()
    else:
        views = objective.zero_energy((network.n, S))
    agents = {i: ChargerAgent(i, objective, S, views[i]) for i in participants}
    use_sparse = objective.use_sparse
    sparse_cols = objective._cols if use_sparse else None
    if use_sparse and _C is not None:
        sparse_cols = [
            np.ascontiguousarray(c, dtype=np.intp) for c in sparse_cols
        ]
    # (charger, slot, policy) → int bitmask of the tasks the commit funds.
    changed_bits_cache: dict[tuple[int, int, int], int] = {}
    bus = bus if bus is not None else MessageBus(list(network.neighbors))
    bus.reset_inboxes()
    stats = bus.stats
    neighbors = network.neighbors
    degree = [len(nbrs) for nbrs in neighbors]

    table: dict[tuple[int, int, int], int] = {}
    commit_trace: list[CommitEvent] = []
    sync = async_dropout == 0.0
    # Proposal-cache accounting: plain local ints (folded into the obs
    # registry by the negotiate_window wrapper, never per-round).
    prop_evals = 0
    prop_hits = 0

    for k in slots:
        k = int(k)
        active_agents = [i for i in participants if k in relevant[i]]
        if not active_agents:
            continue
        gidx = [(i, group_index[(i, k)]) for i in active_agents]
        deg_active = sum(degree[i] for i in active_agents)
        adds_k = (
            {i: objective.added_energy_cols(i, k) for i in active_agents}
            if use_sparse
            else None
        )
        for c in range(num_colors):
            stats.negotiations += 1
            rows_c, lists_c, bits_c = all_matches[c], row_lists[c], row_bits[c]
            match = {}
            match_bits = {}
            for i, g in gidx:
                match[i] = rows_c[g]
                match_bits[i] = bits_c[g]
                agents[i].reset_negotiation(
                    k, bits_c[g], rows_c[g], lists_c[g],
                    adds_k[i] if adds_k is not None else None,
                )
            undecided = set(active_agents)
            # Message-count bookkeeping: in the synchronous model every
            # undecided agent broadcasts each round, so the per-round
            # degree sum is maintained incrementally.
            deg_u = deg_active
            # Standing advertisements: the latest ``ΔF*`` each agent has
            # broadcast this negotiation (``None`` = withdrawn/committed).
            # One shared table reproduces every receiver's inbox-derived
            # knowledge exactly — see the module docstring.
            standing: dict[int, float | None] = {}
            # Last neighbor observed to beat each agent; its standing
            # advertisement is re-checked first so persistent losers skip
            # the full neighbor scan (pure short-circuit — same verdict).
            blocker: dict[int, int] = {}

            negotiation_round = 0
            while undecided:
                negotiation_round += 1
                # Asynchrony model: a sleeping agent skips the round; its
                # previous advertisement stays standing with its neighbors.
                if sync:
                    order = sorted(undecided)
                else:
                    awake = {
                        i
                        for i in undecided
                        if async_rng.random() >= async_dropout
                    }
                    if not awake:
                        continue  # a fully silent round; retry
                    order = sorted(awake)

                # Advertisement phase: every awake undecided agent
                # broadcasts its current best marginal (possibly 0 =
                # withdrawal).  Each broadcast is one transmission plus
                # ``|N(s_i)|`` deliveries in the Fig. 16 accounting.
                proposals: dict[int, tuple[float, int]] = {}
                pending = []
                for i in order:
                    prop = agents[i]._proposal
                    if prop is None:
                        pending.append(i)
                        prop_evals += 1
                    else:
                        prop_hits += 1
                        proposals[i] = prop
                if pending:
                    # Batched advertisement: all cache-missing agents run
                    # the gain kernel in one C round trip (bit-identical
                    # to per-agent best_candidate calls — see
                    # _evaluate_pending).
                    _evaluate_pending(agents, pending, k, match, S)
                    for i in pending:
                        proposals[i] = agents[i]._proposal
                for i in order:
                    prop = proposals[i]
                    standing[i] = prop[0] if prop[0] > MIN_GAIN else None
                stats.broadcasts += len(order)
                stats.messages += (
                    deg_u if sync else sum(degree[i] for i in order)
                )
                stats.rounds += 1

                # Withdrawal: awake agents with no positive gain are done.
                contenders = []
                for i in order:
                    if proposals[i][0] <= MIN_GAIN:
                        undecided.discard(i)
                        deg_u -= degree[i]
                    else:
                        contenders.append(i)
                if not undecided:
                    break

                # Commit phase: local maxima (ties to lower ID) commit in
                # parallel — each agent decides from its neighbors' standing
                # advertisements only: a neighbor is out of the race once it
                # announced a commit (UPD) or a zero gain, both of which set
                # its standing entry to None.
                standing_get = standing.get
                winners = []
                for i in contenders:
                    gain_i = proposals[i][0]
                    b = blocker.get(i)
                    if b is not None:
                        gain_b = standing_get(b)
                        if gain_b is not None and (gain_b, -b) >= (gain_i, -i):
                            continue  # still beaten by the cached blocker
                    beat_all = True
                    for j in neighbors[i]:
                        gain_j = standing_get(j)
                        if gain_j is None:
                            continue
                        if (gain_j, -j) >= (gain_i, -i):
                            beat_all = False
                            blocker[i] = j
                            break
                    if beat_all:
                        winners.append(i)

                if not winners:
                    if async_dropout > 0.0:
                        # The current maximum may be asleep, or a stale
                        # higher advertisement blocks everyone awake; both
                        # resolve once the blocker wakes up.
                        continue
                    # Synchronous model: cannot happen with consistent
                    # views (the global max always wins locally); guard
                    # against livelock.
                    raise RuntimeError(
                        "negotiation livelock: no winner among undecided agents"
                    )

                for i in winners:
                    policy = proposals[i][1]
                    table[(i, k, c)] = policy
                    commit_trace.append(
                        CommitEvent(
                            charger=i,
                            slot=k,
                            color=c,
                            round_index=negotiation_round,
                            policy=policy,
                        )
                    )
                    standing[i] = None
                stats.broadcasts += len(winners)
                stats.messages += sum(degree[i] for i in winners)
                stats.rounds += 1
                for i in winners:
                    undecided.discard(i)
                    deg_u -= degree[i]
                # UPD delivery: every undecided neighbor of a winner folds
                # the committed policy into its view, the winner folds its
                # own.  Winners are in ascending ID order, so each receiver
                # folds commits in the same order its inbox would have
                # delivered them; the stacked views make each commit one
                # batched scatter-add over all receivers.  Undecided
                # neighbors then refresh their caches against the touched
                # (rows × tasks) block.
                for w in winners:
                    policy = table[(w, k, c)]
                    rows_w = match[w]
                    receivers = [i for i in neighbors[w] if i in undecided]
                    receivers.append(w)
                    if use_sparse:
                        vals = adds_k[w][policy]
                        if _C is not None:
                            _C.fold(
                                views, receivers, rows_w,
                                sparse_cols[w], vals,
                            )
                        else:
                            obs = np.asarray(receivers, dtype=np.intp)
                            views[
                                obs[:, None, None],
                                rows_w[None, :, None],
                                sparse_cols[w][None, None, :],
                            ] += vals
                    else:
                        obs = np.asarray(receivers, dtype=np.intp)
                        views[
                            obs[:, None], rows_w[None, :]
                        ] += objective.added_energy(w, k)[policy]
                    key = (w, k, policy)
                    cb = changed_bits_cache.get(key)
                    if cb is None:
                        cb = 0
                        for t in objective.changed_tasks(w, k, policy):
                            cb |= 1 << int(t)
                        changed_bits_cache[key] = cb
                    wb = match_bits[w]
                    for i in neighbors[w]:
                        if i in undecided:
                            agents[i].note_commit(wb, cb)

    return NegotiationResult(
        table=table,
        stats=bus.stats,
        sampler=sampler,
        commit_trace=commit_trace,
        proposal_evals=prop_evals,
        proposal_cache_hits=prop_hits,
    )


def _negotiate_window_faulty(
    network: ChargerNetwork,
    objective: HasteObjective,
    slots: list[int],
    num_colors: int,
    *,
    rng: np.random.Generator,
    num_samples: int = 24,
    initial_energies: np.ndarray | None = None,
    injector,
) -> NegotiationResult:
    """Algorithm 3 hardened for lossy radios and crashing chargers.

    Unlike :func:`_negotiate_window` — where a single shared table of
    standing advertisements reproduces every inbox exactly because
    delivery is guaranteed — this variant materializes each agent's
    knowledge from the messages it actually received through a
    :class:`~repro.faults.bus.LossyMessageBus`:

    * **Advertisements** (``NULL``) are rebroadcast every round by every
      awake undecided agent, stamped with a sequence number so delayed
      or duplicated copies cannot roll knowledge backwards.  Entries not
      refreshed within ``model.timeout`` rounds expire — a crashed or
      silently-withdrawn neighbor's high bid cannot block the
      neighborhood forever.
    * **Commits** (``UPD``) are acknowledged per receiver; the committer
      retransmits to unacked neighbors for up to ``model.retry`` rounds
      before giving up, so a lost commit degrades a neighbor's *view*
      (it keeps planning against stale task energies) without stalling
      the protocol.  Folds are idempotent — duplicates cannot double
      apply energy.
    * **Safety**: each agent owns its ``(charger, slot)`` partition and
      leaves the race the moment it commits, so the per-slot partition
      matroid holds *by construction* no matter how far views diverge;
      :class:`MatroidViolationError` guards the invariant anyway.
    * **Liveness**: the globally best awake bidder always commits once
      stale blockers expire, and ``model.max_rounds`` caps every
      negotiation outright (an abort keeps whatever committed so far).

    The negotiation ``rng`` is consumed exactly as on the lossless path
    (the color sampler only); every fault decision comes from the
    injector's own seeded stream, which also makes whole runs replayable
    bit for bit from a recorded :class:`~repro.faults.model.FaultTrace`.
    """
    model = injector.model
    participants = [
        i
        for i in range(network.n)
        if network.policy_count(i) > 1 and objective.relevant_slots(i).size > 0
    ]
    relevant = {
        i: set(int(k) for k in objective.relevant_slots(i)) for i in participants
    }
    part_keys = [
        (i, int(k)) for k in slots for i in participants if int(k) in relevant[i]
    ]
    sampler = ColorSampler(part_keys, num_colors, num_samples, rng)
    S = sampler.num_samples
    group_index = {key: g for g, key in enumerate(part_keys)}
    all_matches = [
        [np.ascontiguousarray(rows, dtype=np.intp) for rows in per_color]
        for per_color in sampler.matches_by_color()
    ]
    row_lists = [
        [[int(r) for r in rows] for rows in per_color]
        for per_color in all_matches
    ]
    row_bits = [
        [sum(1 << r for r in rl) for rl in per_color]
        for per_color in row_lists
    ]

    if initial_energies is not None:
        if initial_energies.ndim == 1:
            initial_energies = initial_energies[None, None, :]
        else:
            initial_energies = initial_energies[None, :, :]
        views = np.broadcast_to(
            initial_energies, (network.n, S, network.m)
        ).copy()
    else:
        views = objective.zero_energy((network.n, S))
    agents = {i: ChargerAgent(i, objective, S, views[i]) for i in participants}
    use_sparse = objective.use_sparse
    sparse_cols = objective._cols if use_sparse else None
    changed_bits_cache: dict[tuple[int, int, int], int] = {}
    bus = LossyMessageBus(list(network.neighbors), injector)
    stats = bus.stats
    fs = injector.stats
    neighbors = network.neighbors

    table: dict[tuple[int, int, int], int] = {}
    commit_trace: list[CommitEvent] = []
    prop_evals = 0
    prop_hits = 0

    def fold(receiver: int, w: int, k: int, policy: int, rows_w, adds_k) -> None:
        """Apply ``w``'s committed energy to one receiver's view."""
        if use_sparse:
            views[receiver][rows_w[:, None], sparse_cols[w][None, :]] += (
                adds_k[w][policy]
            )
        else:
            views[receiver][rows_w] += objective.added_energy(w, k)[policy]

    for k in slots:
        k = int(k)
        active_agents = [i for i in participants if k in relevant[i]]
        if not active_agents:
            continue
        active_set = set(active_agents)
        gidx = [(i, group_index[(i, k)]) for i in active_agents]
        adds_k = (
            {i: objective.added_energy_cols(i, k) for i in active_agents}
            if use_sparse
            else None
        )
        for c in range(num_colors):
            stats.negotiations += 1
            bus.reset_inboxes()
            rows_c, lists_c, bits_c = all_matches[c], row_lists[c], row_bits[c]
            match = {}
            match_bits = {}
            for i, g in gidx:
                match[i] = rows_c[g]
                match_bits[i] = bits_c[g]
                agents[i].reset_negotiation(
                    k, bits_c[g], rows_c[g], lists_c[g],
                    adds_k[i] if adds_k is not None else None,
                )
            undecided = set(active_agents)
            #: per-receiver knowledge: i -> {j: (gain, policy, stamp)}.
            known: dict[int, dict[int, tuple[float, int, int]]] = {
                i: {} for i in active_agents
            }
            #: newest advertisement sequence seen per (receiver, sender).
            last_seq: dict[int, dict[int, int]] = {i: {} for i in active_agents}
            #: (receiver, committer) pairs already folded — idempotence.
            folded: set[tuple[int, int]] = set()
            #: committer -> neighbors still owing an ACK / retry budget.
            pending: dict[int, set[int]] = {}
            retries: dict[int, int] = {}
            upd_msg: dict[int, Message] = {}

            rnd = 0
            while undecided or pending:
                rnd += 1
                if rnd > model.max_rounds:
                    fs.aborts += 1
                    break
                bus.advance_round()

                # -- receive phase: fold commits, refresh knowledge, ack.
                for i in active_agents:
                    inbox = bus.inbox(i)
                    if not inbox:
                        continue
                    know_i = known[i]
                    seq_i = last_seq[i]
                    for msg in inbox:
                        j = msg.sender
                        if msg.command == CMD_NULL:
                            if msg.seq <= seq_i.get(j, -1):
                                continue  # delayed/duplicated stale copy
                            seq_i[j] = msg.seq
                            if msg.gain > MIN_GAIN:
                                know_i[j] = (msg.gain, msg.policy, rnd)
                            else:
                                know_i.pop(j, None)  # withdrawal
                        elif msg.command == CMD_UPDATE:
                            fs.acks += 1
                            bus.unicast(
                                Message(i, k, c, CMD_ACK, 0.0, msg.policy, rnd),
                                j,
                            )
                            know_i.pop(j, None)  # j left the race
                            if msg.seq > seq_i.get(j, -1):
                                seq_i[j] = msg.seq
                            if (i, j) in folded:
                                continue  # duplicate UPD — fold once
                            folded.add((i, j))
                            fold(i, j, k, msg.policy, match[j], adds_k)
                            key = (j, k, msg.policy)
                            cb = changed_bits_cache.get(key)
                            if cb is None:
                                cb = 0
                                for t in objective.changed_tasks(
                                    j, k, msg.policy
                                ):
                                    cb |= 1 << int(t)
                                changed_bits_cache[key] = cb
                            agents[i].note_commit(match_bits[j], cb)
                        else:  # CMD_ACK — i committed earlier, j confirms
                            acked = pending.get(i)
                            if acked is not None:
                                acked.discard(j)

                # -- retransmit phase: chase unacked UPD receivers.
                for w in sorted(pending):
                    if not pending[w]:
                        del pending[w], retries[w], upd_msg[w]
                        continue
                    if injector.crashed(w):
                        continue  # a down committer cannot retransmit
                    if retries[w] <= 0:
                        fs.giveups += len(pending[w])
                        del pending[w], retries[w], upd_msg[w]
                        continue
                    retries[w] -= 1
                    fs.retransmits += 1
                    bus.broadcast(upd_msg[w])

                if not undecided:
                    continue  # draining acks/retransmits only

                # -- advertise phase: every awake undecided agent bids.
                awake = []
                for i in sorted(undecided):
                    if injector.crashed(i):
                        fs.crashed_skips += 1
                    else:
                        awake.append(i)
                proposals: dict[int, tuple[float, int]] = {}
                for i in awake:
                    agent = agents[i]
                    prop = agent._proposal
                    if prop is None:
                        prop = agent.best_candidate(k, match[i], S)
                        prop_evals += 1
                    else:
                        prop_hits += 1
                    proposals[i] = prop
                    gain = prop[0] if prop[0] > MIN_GAIN else 0.0
                    bus.broadcast(Message(i, k, c, CMD_NULL, gain, prop[1], rnd))
                for i in awake:
                    if proposals[i][0] <= MIN_GAIN:
                        undecided.discard(i)  # permanent withdrawal

                # -- commit phase: needs one delivery round of knowledge.
                if rnd < 2:
                    continue
                for i in awake:
                    if i not in undecided:
                        continue
                    gain_i = proposals[i][0]
                    know_i = known[i]
                    beaten = False
                    for j in list(know_i):
                        gain_j, _pol, stamp = know_i[j]
                        if rnd - stamp > model.timeout:
                            del know_i[j]
                            fs.expiries += 1
                            continue
                        if (gain_j, -j) >= (gain_i, -i):
                            beaten = True
                            break
                    if beaten:
                        continue
                    key = (i, k, c)
                    if key in table:
                        raise MatroidViolationError(
                            f"partition (charger={i}, slot={k}, color={c}) "
                            "was committed twice"
                        )
                    policy = proposals[i][1]
                    table[key] = policy
                    commit_trace.append(
                        CommitEvent(
                            charger=i,
                            slot=k,
                            color=c,
                            round_index=rnd,
                            policy=policy,
                        )
                    )
                    undecided.discard(i)
                    folded.add((i, i))
                    fold(i, i, k, policy, match[i], adds_k)
                    upd = Message(i, k, c, CMD_UPDATE, gain_i, policy, rnd)
                    bus.broadcast(upd)
                    targets = {j for j in neighbors[i] if j in active_set}
                    if targets:
                        pending[i] = targets
                        retries[i] = model.retry
                        upd_msg[i] = upd

            # Receivers the committer never reached keep a diverged view;
            # that is the graceful part of the degradation — count them.
            for w, missing in pending.items():
                fs.giveups += len(missing)

    return NegotiationResult(
        table=table,
        stats=bus.stats,
        sampler=sampler,
        commit_trace=commit_trace,
        proposal_evals=prop_evals,
        proposal_cache_hits=prop_hits,
        fault_stats=fs,
    )
