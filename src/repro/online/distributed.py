"""Distributed negotiation — paper Algorithm 3's core protocol.

Every charger runs the same local loop: for each future slot ``k`` (outer)
and color ``c`` (inner) it computes the best marginal gain ``ΔF*_i`` of its
own policies against its *local* view of task energies, broadcasts it to
its neighbors, and commits its policy when its advertised gain beats every
undecided neighbor's (ties break to the lower charger ID, as in the paper).
Committed policies are announced with an ``UPD`` message; receiving agents
fold the announced energy into their local views and recompute.

Why the local view is exact (paper §6.2, first part of the proof): the
marginal gain of charger ``i`` only involves tasks ``i`` can cover, and any
other charger able to touch those tasks is by definition a neighbor of
``i`` — so tracking self + neighbor commitments reproduces the global
marginal exactly, and the asynchronous commits linearize into the same
greedy order the centralized Algorithm 2 uses (the DAG/topological-sort
argument).  The tests pin distributed C=1 output against centralized C=1.

One interpretation note: Algorithm 3's pseudocode describes ``e_i^{k*}`` as
"a set of K_i scheduling policies"; we implement the per-(slot, color)
negotiation of single-slot policies, which matches the outer ``k`` / inner
``c`` loop structure, the per-slot partition matroid, and the equivalence
argument to Algorithm 2 (whose guarantee is order-invariant).

The Monte Carlo color draws (``C > 1``) are *public pseudorandomness*: all
agents derive the same ``(S, partitions)`` color table from a shared seed,
which needs no communication — only the seed — so locality is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.network import IDLE_POLICY, ChargerNetwork
from ..objective.haste import HasteObjective
from ..submodular.estimation import ColorSampler
from .messaging import CMD_NULL, CMD_UPDATE, Message, MessageBus, MessageStats
from .ordering import CommitEvent

__all__ = ["ChargerAgent", "NegotiationResult", "negotiate_window"]

MIN_GAIN: float = 1e-12


class ChargerAgent:
    """One charger's local negotiation state.

    ``energies`` is the agent's ``(S, m)`` view of per-task harvested
    energy under each Monte Carlo color sample, fed by its own commitments
    and the ``UPD`` messages of neighbors.  Entries for tasks outside the
    agent's coverage may be stale — they are never read (see module
    docstring).
    """

    def __init__(
        self,
        index: int,
        objective: HasteObjective,
        num_samples: int,
        initial_energies: np.ndarray | None = None,
    ) -> None:
        self.index = index
        self.objective = objective
        if initial_energies is not None:
            if initial_energies.shape != (num_samples, objective.network.m):
                raise ValueError("initial_energies has the wrong shape")
            self.energies = initial_energies.copy()
        else:
            self.energies = objective.zero_energy((num_samples,))
        #: latest advertised gain per neighbor for the active negotiation;
        #: ``None`` marks a neighbor known to be decided.
        self.neighbor_gains: dict[int, float | None] = {}

    def best_candidate(
        self, slot: int, match_rows: np.ndarray, total_samples: int
    ) -> tuple[float, int]:
        """Best ``(ΔF, policy)`` for this agent's partition at ``slot``.

        ``match_rows`` are the color-sample indices whose draw for the
        partition equals the color under negotiation; the expectation is
        normalized by the full sample count.
        """
        if match_rows.size == 0:
            return 0.0, IDLE_POLICY
        gains = self.objective.partition_gains(
            self.energies[match_rows], self.index, slot
        )
        total = gains.sum(axis=0) / total_samples
        best_p = int(np.argmax(total))
        if best_p == IDLE_POLICY or total[best_p] <= MIN_GAIN:
            return 0.0, IDLE_POLICY
        return float(total[best_p]), best_p

    def observe_commit(
        self, sender: int, slot: int, policy: int, match_rows: np.ndarray
    ) -> None:
        """Fold a neighbor's (or our own) committed policy into the view."""
        self.objective.apply_rows(self.energies, match_rows, sender, slot, policy)


@dataclass
class NegotiationResult:
    """Outcome of negotiating one window of slots.

    ``table`` maps ``(charger, slot, color) → policy``; ``stats`` is the
    communication accounting for Fig. 16; ``commit_trace`` records every
    commit with its synchronous round, feeding the Thm 6.1 linearization
    (:mod:`repro.online.ordering`).
    """

    table: dict[tuple[int, int, int], int]
    stats: MessageStats
    sampler: ColorSampler = field(repr=False, default=None)
    commit_trace: list[CommitEvent] = field(repr=False, default_factory=list)


def negotiate_window(
    network: ChargerNetwork,
    objective: HasteObjective,
    slots: list[int],
    num_colors: int,
    *,
    rng: np.random.Generator,
    num_samples: int = 24,
    initial_energies: np.ndarray | None = None,
    bus: MessageBus | None = None,
    async_dropout: float = 0.0,
    async_rng: np.random.Generator | None = None,
) -> NegotiationResult:
    """Run the distributed negotiation for every slot in ``slots``.

    ``initial_energies`` (shape ``(S, m)`` or ``(m,)`` broadcast to all
    samples) carries energy already banked by the executed past — the
    online runtime passes the pre-window harvest so marginal gains account
    for tasks' existing progress.

    ``async_dropout`` models the paper's "totally asynchronous" chargers:
    with probability ``async_dropout`` an undecided agent misses a round
    (does not recompute/broadcast; its last advertisement stays standing
    and it cannot commit that round).  The protocol's outcome quality is
    insensitive to this — commits still linearize into a greedy order
    (Thm 6.1's argument never assumes lock-step rounds) — and the tests
    assert it; rounds simply stretch.  ``0.0`` (default) is the synchronous
    model used for the Fig. 16 accounting.

    Returns the committed S-C table; drawing the final colors and building
    the schedule is the caller's job (the runtime shares draws between
    events to keep unchanged partitions stable).
    """
    if not (0.0 <= async_dropout < 1.0):
        raise ValueError(f"async_dropout must be in [0, 1), got {async_dropout}")
    if async_dropout > 0.0 and async_rng is None:
        raise ValueError("async_dropout > 0 requires async_rng")
    participants = [
        i
        for i in range(network.n)
        if network.policy_count(i) > 1 and objective.relevant_slots(i).size > 0
    ]
    relevant = {
        i: set(int(k) for k in objective.relevant_slots(i)) for i in participants
    }
    part_keys = [
        (i, int(k)) for k in slots for i in participants if int(k) in relevant[i]
    ]
    sampler = ColorSampler(part_keys, num_colors, num_samples, rng)
    S = sampler.num_samples

    if initial_energies is not None and initial_energies.ndim == 1:
        initial_energies = np.broadcast_to(
            initial_energies, (S, network.m)
        ).copy()
    agents = {
        i: ChargerAgent(i, objective, S, initial_energies) for i in participants
    }
    bus = bus if bus is not None else MessageBus(list(network.neighbors))
    bus.reset_inboxes()

    table: dict[tuple[int, int, int], int] = {}
    commit_trace: list[CommitEvent] = []

    for k in slots:
        k = int(k)
        active_agents = [i for i in participants if k in relevant[i]]
        if not active_agents:
            continue
        for c in range(num_colors):
            bus.stats.negotiations += 1
            match = {i: sampler.matching_samples((i, k), c) for i in active_agents}
            undecided = set(active_agents)
            for i in active_agents:
                agents[i].neighbor_gains = {}

            negotiation_round = 0
            while undecided:
                negotiation_round += 1
                # Asynchrony model: a sleeping agent skips the round; its
                # previous advertisement stays standing with its neighbors.
                if async_dropout > 0.0:
                    awake = {
                        i
                        for i in undecided
                        if async_rng.random() >= async_dropout
                    }
                    if not awake:
                        continue  # a fully silent round; retry
                else:
                    awake = set(undecided)

                # Advertisement phase: every awake undecided agent
                # broadcasts its current best marginal (possibly 0 =
                # withdrawal).
                proposals: dict[int, tuple[float, int]] = {}
                for i in sorted(awake):
                    gain, policy = agents[i].best_candidate(k, match[i], S)
                    proposals[i] = (gain, policy)
                    bus.broadcast(
                        Message(i, k, c, CMD_NULL, gain, policy)
                    )
                bus.advance_round()
                for i in sorted(undecided):
                    for msg in bus.inbox(i):
                        if msg.command == CMD_NULL and msg.slot == k and msg.color == c:
                            agents[i].neighbor_gains[msg.sender] = (
                                msg.gain if msg.gain > MIN_GAIN else None
                            )

                # Withdrawal: awake agents with no positive gain are done.
                withdrawn = {i for i in awake if proposals[i][0] <= MIN_GAIN}
                undecided -= withdrawn
                awake -= withdrawn
                if not undecided:
                    break

                # Commit phase: local maxima (ties to lower ID) commit in
                # parallel — each agent decides from its own inbox only: a
                # neighbor is out of the race once it announced a commit
                # (UPD) or a zero gain, both of which set its entry to None.
                winners = []
                for i in sorted(awake):
                    gain_i = proposals[i][0]
                    beat_all = True
                    for j in network.neighbors[i]:
                        gain_j = agents[i].neighbor_gains.get(j)
                        if gain_j is None:
                            continue
                        if (gain_j, -j) >= (gain_i, -i):
                            beat_all = False
                            break
                    if beat_all:
                        winners.append(i)

                if not winners:
                    if async_dropout > 0.0:
                        # The current maximum may be asleep, or a stale
                        # higher advertisement blocks everyone awake; both
                        # resolve once the blocker wakes up.
                        continue
                    # Synchronous model: cannot happen with consistent
                    # views (the global max always wins locally); guard
                    # against livelock.
                    raise RuntimeError(
                        "negotiation livelock: no winner among undecided agents"
                    )

                for i in winners:
                    gain, policy = proposals[i]
                    table[(i, k, c)] = policy
                    commit_trace.append(
                        CommitEvent(
                            charger=i,
                            slot=k,
                            color=c,
                            round_index=negotiation_round,
                            policy=policy,
                        )
                    )
                    agents[i].observe_commit(i, k, policy, match[i])
                    bus.broadcast(Message(i, k, c, CMD_UPDATE, gain, policy))
                bus.advance_round()
                undecided -= set(winners)
                for i in sorted(undecided):
                    for msg in bus.inbox(i):
                        if msg.command == CMD_UPDATE and msg.slot == k and msg.color == c:
                            agents[i].observe_commit(
                                msg.sender, k, msg.policy, match[msg.sender]
                            )
                            agents[i].neighbor_gains[msg.sender] = None

    return NegotiationResult(
        table=table, stats=bus.stats, sampler=sampler, commit_trace=commit_trace
    )
