"""The online runtime: task arrivals, rescheduling delay, execution.

Drives the paper's online scenario (§6): tasks arrive stochastically at
their release slots; each arrival triggers the distributed negotiation of
Algorithm 3, whose new policies take effect only after the rescheduling
delay ``τ`` (slots) — the first ``τ`` slots of every task window are
effectively "cut off", which is exactly where the extra factor ½ of the
competitive ratio comes from (Thm 6.1).

Knowledge model: the planner at event time ``t`` sees only tasks with
``release_slot ≤ t`` (a *masked* objective).  Policy decisions for slots
before ``t + τ`` are frozen at whatever earlier negotiations chose.  The
physics, however, is indifferent to knowledge — a device inside a charger's
sector harvests energy whether or not the schedule "meant" it — so final
accounting runs the committed schedule through the ground-truth engine on
the full task set.

The comparison baselines (GreedyUtility / GreedyCover, §7.2) run here too,
with the same τ-delayed knowledge of arrivals, so the online sweeps
(Figs. 11–15) compare like with like.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core.network import IDLE_POLICY, ChargerNetwork
from ..core.policy import Schedule
from ..faults.bus import FaultStats
from ..faults.model import FaultModel
from ..objective.haste import HasteObjective
from ..offline.smoothing import smooth_switches
from ..sim.engine import ExecutionResult, execute_schedule
from .distributed import negotiate_window
from .messaging import MessageStats

__all__ = ["OnlineRunResult", "run_online_haste", "run_online_baseline"]

MIN_GAIN: float = 1e-12


@dataclass
class OnlineRunResult:
    """One full online run: the executed schedule plus its accounting."""

    schedule: Schedule
    execution: ExecutionResult
    stats: MessageStats
    events: int
    #: Fault-layer totals when the run negotiated under an active
    #: :class:`~repro.faults.model.FaultModel` (``None`` otherwise), and
    #: the injector's recorded trace for replay/forensics.
    fault_stats: FaultStats | None = None
    fault_trace: object | None = None

    @property
    def total_utility(self) -> float:
        """Overall charging utility (switching delay applied)."""
        return self.execution.total_utility

    def summary(self) -> str:
        return (
            f"OnlineRunResult(utility={self.total_utility:.6g}, "
            f"events={self.events}, {self.stats.summary()})"
        )


def run_online_haste(
    network: ChargerNetwork,
    *,
    num_colors: int = 4,
    num_samples: int = 24,
    tau: int = 1,
    rho: float = 1.0 / 12.0,
    rng: np.random.Generator | None = None,
    final_draws: int = 4,
    use_sparse: bool = True,
    fault_model: FaultModel | None = None,
    base_objective: HasteObjective | None = None,
) -> OnlineRunResult:
    """HASTE-DO: the distributed online algorithm end to end.

    ``fault_model`` activates the fault-injected negotiation
    (:mod:`repro.faults`): one seeded injector serves every replanning
    window, so the fault stream, the crash clock, and the counters are
    continuous across arrival events and the whole run replays bit for
    bit from the model alone.  A ``None`` or null model is byte-identical
    to the lossless run — the negotiation ``rng`` stream never sees the
    fault layer.

    Every distinct release slot is an arrival event: the fleet renegotiates
    all policies for slots ``≥ event + τ`` against the energy already
    banked by the frozen past, via :func:`negotiate_window`.

    ``final_draws`` samples several color vectors at each event and keeps
    the best under the *known-task* objective (``1`` = the literal
    Algorithm 3 draw; values > 1 are the same derandomization-by-sampling
    used by the centralized scheduler, realizable with shared
    pseudorandomness plus one aggregation round).

    Per-arrival replanning is incremental: one base objective is built for
    the whole run and each event derives a knowledge-masked view from it
    (:meth:`~repro.objective.haste.HasteObjective.masked_view`), sharing
    the per-policy energy kernels instead of reallocating them.
    ``use_sparse=False`` selects the dense reference kernels end to end
    (used by the equivalence tests).

    When :mod:`repro.obs` is enabled the run is traced as an
    ``online.run`` span with one ``online.arrival`` child per event —
    the per-arrival negotiation latency histogram the paper's §5/§6
    complexity discussion is about — and the run's final
    :class:`~repro.online.messaging.MessageStats` are emitted as an
    ``online.run`` telemetry event (bit-identical to the counters the
    per-window folds accumulate).
    """
    if tau < 0:
        raise ValueError(f"tau must be >= 0, got {tau}")
    if final_draws < 1:
        raise ValueError(f"final_draws must be >= 1, got {final_draws}")
    rng = rng if rng is not None else np.random.default_rng()
    injector = None
    if fault_model is not None and not fault_model.is_null():
        injector = fault_model.injector(network.n)

    K = network.num_slots
    committed = Schedule(network)
    stats = MessageStats()
    events = 0
    # ``base_objective`` is the prepared-state warm path: a caller (the
    # serve engine, the registry body) hands in the objective it already
    # holds for this network so repeated runs skip the kernel rebuild.
    # The objective's cross-run state is idempotent value caches only, so
    # a warm run is bit-identical to a cold one.
    if base_objective is not None:
        if base_objective.network is not network:
            raise ValueError("base_objective is bound to a different network")
    else:
        base_objective = HasteObjective(network, use_sparse=use_sparse)

    arrival_slots = sorted({t.release_slot for t in network.tasks})
    with obs.span("online.run", colors=num_colors, tau=tau):
        for t in arrival_slots:
            boundary = t + tau
            if boundary >= K:
                continue  # nothing left to replan for this arrival
            known = network.release_slots <= t
            objective = base_objective.masked_view(known)

            window = [k for k in range(boundary, K)]
            # Restrict to slots where anything known is active for any
            # charger.
            active_any = objective.active[:, boundary:K].any(axis=0)
            window = [k for k, keep in zip(window, active_any) if keep]
            if not window:
                continue

            events += 1
            if obs.enabled():
                # Queue-depth telemetry for sustained-traffic runs: how
                # many known tasks are still in flight past this replan
                # boundary, and how many arrivals this event is absorbing.
                inflight = int(np.sum(known & (network.end_slots > boundary)))
                backlog = int(np.sum(network.release_slots == t))
                obs.set_gauge("online.inflight_tasks", inflight)
                obs.set_gauge("online.arrival_backlog", backlog)
                obs.observe("online.inflight_tasks", inflight)
                obs.observe("online.arrival_backlog", backlog)
            with obs.span(
                "online.arrival", slot=int(t), window_slots=len(window)
            ):
                banked = objective.energies_of_schedule(
                    committed, stop=boundary
                )
                result = negotiate_window(
                    network,
                    objective,
                    window,
                    num_colors,
                    rng=rng,
                    num_samples=num_samples,
                    initial_energies=banked,
                    fault_injector=injector,
                )
                stats.merge(result.stats)

                # Sample final colors; keep the best of ``final_draws``
                # vectors under the known-task objective.
                best_sched: Schedule | None = None
                best_value = -np.inf
                draws = final_draws if num_colors > 1 else 1
                partitions = sorted({(i, k) for (i, k, _c) in result.table})
                with obs.span("online.draw_and_smooth"):
                    for _ in range(draws):
                        candidate = committed.copy()
                        candidate.clear_from(boundary)
                        for (i, k) in partitions:
                            c = int(rng.integers(0, num_colors))
                            p = result.table.get((i, k, c))
                            if p is not None:
                                candidate.set(i, k, p)
                        value = objective.value_of_schedule(candidate)
                        if value > best_value:
                            best_sched, best_value = candidate, value
                    if best_sched is not None:
                        # Delay-aware switch smoothing of the freshly
                        # planned future, seeing only the already-released
                        # tasks (no clairvoyance).
                        committed = smooth_switches(
                            network,
                            best_sched,
                            rho=rho,
                            task_mask=known,
                            start_slot=boundary,
                        )

        execution = execute_schedule(network, committed, rho=rho)
    if obs.enabled():
        obs.inc("online.runs")
        obs.inc("online.events", events)
        fields = dict(stats.as_dict())
        if injector is not None:
            fields.update(
                {f"faults_{k}": v for k, v in injector.stats.as_dict().items()}
            )
        obs.event(
            "online.run",
            events=events,
            utility=execution.total_utility,
            **fields,
        )
    return OnlineRunResult(
        schedule=committed,
        execution=execution,
        stats=stats,
        events=events,
        fault_stats=injector.stats if injector is not None else None,
        fault_trace=injector.trace if injector is not None else None,
    )


def run_online_baseline(
    network: ChargerNetwork,
    kind: str = "utility",
    *,
    tau: int = 1,
    rho: float = 1.0 / 12.0,
) -> OnlineRunResult:
    """GreedyUtility / GreedyCover with τ-delayed knowledge of arrivals.

    At slot ``k`` a charger only reacts to tasks released at or before
    ``k − τ`` (it needs τ slots to learn about and re-plan for an arrival,
    like HASTE-DO); it then greedily picks its orientation exactly as the
    offline baseline would.  ``kind`` is ``"utility"`` or ``"cover"``.
    """
    if kind not in ("utility", "cover"):
        raise ValueError(f"kind must be 'utility' or 'cover', got {kind!r}")
    if tau < 0:
        raise ValueError(f"tau must be >= 0, got {tau}")

    objective = HasteObjective(network)
    sched = Schedule(network)
    own = np.zeros((network.n, network.m))
    K = network.num_slots
    for k in range(K):
        known = network.release_slots + tau <= k
        eff_active = network.active[:, k] & known
        if not eff_active.any():
            continue
        for i in range(network.n):
            if network.policy_count(i) <= 1:
                continue
            if kind == "utility":
                add = objective.added_energy(i, k, active_override=eff_active)
                gains = objective.utility.gain(own[i][None, :], add) @ objective.weights
                best_p = int(np.argmax(gains))
                if best_p != IDLE_POLICY and gains[best_p] > MIN_GAIN:
                    sched.set(i, k, best_p)
                    own[i] += add[best_p]
            else:
                counts = network.cover_masks[i] @ eff_active
                best_p = int(np.argmax(counts))
                if best_p != IDLE_POLICY and counts[best_p] > 0:
                    sched.set(i, k, best_p)

    execution = execute_schedule(network, sched, rho=rho)
    return OnlineRunResult(
        schedule=sched, execution=execution, stats=MessageStats(), events=0
    )
