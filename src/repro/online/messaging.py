"""Message-passing substrate for the distributed algorithm.

The paper's chargers negotiate by broadcasting control messages
``msg(ID, TIM, COL, CMD, ΔF*, e*)`` to their neighbors (§6.1).  We model
the radio with a synchronous-round broadcast bus: within a round every
agent reads the messages delivered at the end of the previous round, then
broadcasts at most once; a broadcast is accounted as one *transmission* and
``|N(s_i)|`` *deliveries* (the unicast count that grows quadratically with
the fleet in Fig. 16).

The bus is deliberately dumb — no losses, no reordering within a round —
because the paper's analysis assumes reliable neighbor communication; the
accounting, not the fault model, is what Fig. 16 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Message",
    "MessageStats",
    "MessageBus",
    "CMD_NULL",
    "CMD_UPDATE",
    "CMD_ACK",
]

CMD_NULL = "NULL"
CMD_UPDATE = "UPD"
#: Acknowledgement of a received UPD — only the fault-tolerant protocol
#: (:mod:`repro.faults`) sends these; the lossless synchronous model never
#: needs them because delivery is guaranteed.
CMD_ACK = "ACK"


@dataclass(frozen=True, slots=True)
class Message:
    """One control message, mirroring the paper's six fields.

    ``seq`` is a sender-local sequence number (the broadcast round) the
    lossy transport uses to discard reordered stale advertisements; the
    lossless bus never reorders, so it stays at its default there.
    """

    sender: int  # ID
    slot: int  # TIM
    color: int  # COL
    command: str  # CMD: NULL (advertisement), UPD (commit), ACK (receipt)
    gain: float  # ΔF*_i(Q_i)
    policy: int  # e*_i — the policy index being advertised/committed
    seq: int = 0  # sender-local sequence number (reorder protection)

    def __post_init__(self) -> None:
        if self.command not in (CMD_NULL, CMD_UPDATE, CMD_ACK):
            raise ValueError(f"unknown command {self.command!r}")
        if self.sender < 0:
            raise ValueError(f"sender must be >= 0, got {self.sender}")
        if self.slot < 0:
            raise ValueError(f"slot must be >= 0, got {self.slot}")


@dataclass
class MessageStats:
    """Communication accounting for one negotiation (or a whole run).

    ``messages`` counts unicast deliveries (one per neighbor per
    broadcast — the quantity plotted in Fig. 16); ``broadcasts`` the number
    of transmissions; ``rounds`` the synchronous rounds consumed;
    ``negotiations`` how many (slot, color) negotiations ran.
    """

    messages: int = 0
    broadcasts: int = 0
    rounds: int = 0
    negotiations: int = 0

    def merge(self, other: "MessageStats") -> None:
        """Accumulate another stats block into this one."""
        self.messages += other.messages
        self.broadcasts += other.broadcasts
        self.rounds += other.rounds
        self.negotiations += other.negotiations

    def as_dict(self) -> dict[str, int]:
        """The four totals as a plain dict — the unit the observability
        registry folds (``negotiation.messages`` etc.) and the shape the
        JSONL telemetry records carry, so trace files and in-memory stats
        stay field-for-field comparable."""
        return {
            "messages": self.messages,
            "broadcasts": self.broadcasts,
            "rounds": self.rounds,
            "negotiations": self.negotiations,
        }

    def summary(self) -> str:
        return (
            f"MessageStats(messages={self.messages}, rounds={self.rounds}, "
            f"broadcasts={self.broadcasts}, negotiations={self.negotiations})"
        )


class MessageBus:
    """Synchronous-round neighbor broadcast with delivery accounting.

    ``neighbors`` is the per-charger neighbor sets of the network.  Agents
    call :meth:`broadcast` during a round; :meth:`advance_round` delivers
    everything queued and increments the round counter.  Messages are only
    delivered to the sender's neighbors — no global state leaks through the
    bus.
    """

    def __init__(self, neighbors: list[frozenset[int]]) -> None:
        self.neighbors = neighbors
        self._pending: list[list[Message]] = [[] for _ in neighbors]
        self._inboxes: list[list[Message]] = [[] for _ in neighbors]
        self.stats = MessageStats()

    def broadcast(self, msg: Message) -> None:
        """Queue ``msg`` for delivery to every neighbor of its sender."""
        nbrs = self.neighbors[msg.sender]
        self.stats.broadcasts += 1
        self.stats.messages += len(nbrs)
        for j in nbrs:
            self._pending[j].append(msg)

    def advance_round(self) -> None:
        """Deliver queued messages and start a new synchronous round.

        The previous round's inbox lists are recycled as the new pending
        queues (they have been consumed by then), avoiding a fresh list
        allocation per charger per round.
        """
        self.stats.rounds += 1
        self._pending, self._inboxes = self._inboxes, self._pending
        for queue in self._pending:
            queue.clear()

    def inbox(self, agent: int) -> list[Message]:
        """Messages delivered to ``agent`` at the last round boundary."""
        return self._inboxes[agent]

    def reset_inboxes(self) -> None:
        """Drop all delivered and queued messages (between negotiations)."""
        self._pending = [[] for _ in self.neighbors]
        self._inboxes = [[] for _ in self.neighbors]
