"""Loader for the optional C negotiation kernels (``_fastpath.c``).

The distributed negotiation's inner loop is dispatch-bound: millions of
tiny tensor evaluations whose arithmetic is a few hundred flops each.
``_fastpath.c`` collapses each evaluation into one C call.  The extension
is compiled on first import with the system C compiler and cached next to
the source; anything going wrong — no compiler, no headers, sandboxed
filesystem — degrades silently to the pure-NumPy path, which remains the
reference implementation (the equivalence tests compare the two).

Set ``REPRO_DISABLE_CKERNEL=1`` to force the NumPy path (used by the
tests to pin C-vs-NumPy protocol equivalence, and available as an escape
hatch).  No third-party packages are involved: just ``cc`` and the
Python/NumPy headers that ship with the interpreter environment.

Which backend actually ran is observable: :func:`load` emits a
``ckernel.loaded`` / ``ckernel.disabled`` / ``ckernel.fallback`` event
through :mod:`repro.obs`, and an *unrequested* fallback — compilation or
loading failed rather than ``REPRO_DISABLE_CKERNEL`` being set — also
raises a one-time ``RuntimeWarning`` so the degradation is never silent.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sysconfig
from pathlib import Path

from .. import obs

__all__ = ["load"]

_SRC = Path(__file__).with_name("_fastpath.c")


def _build(so_path: Path) -> tuple[bool, str]:
    """Compile ``_fastpath.c`` → ``so_path``; ``(ok, failure detail)``."""
    import numpy as np

    cc = os.environ.get("CC", "cc")
    tmp = so_path.with_name(so_path.name + f".tmp{os.getpid()}")
    cmd = [
        cc,
        "-O2",
        "-fPIC",
        "-shared",
        # Keep IEEE rounding bit-for-bit: no FMA contraction.
        "-ffp-contract=off",
        f"-I{sysconfig.get_paths()['include']}",
        f"-I{np.get_include()}",
        str(_SRC),
        "-o",
        str(tmp),
    ]
    try:
        proc = subprocess.run(cmd, capture_output=True, timeout=120)
        if proc.returncode != 0 or not tmp.exists():
            tmp.unlink(missing_ok=True)
            detail = proc.stderr.decode(errors="replace").strip()
            return False, (
                f"{cc} exited with status {proc.returncode}"
                + (f": {detail[-500:]}" if detail else "")
            )
        tmp.replace(so_path)  # atomic: concurrent builders race safely
        return True, ""
    except (OSError, subprocess.TimeoutExpired) as exc:
        tmp.unlink(missing_ok=True)
        return False, f"{type(exc).__name__}: {exc}"


def _fallback(reason: str) -> None:
    """Record an unrequested degradation to the NumPy reference path."""
    obs.warn_once(
        "ckernel.fallback",
        "repro.online._fastpath could not be compiled/loaded; the "
        "negotiation runs on the (bit-identical, slower) pure-NumPy "
        f"reference path.  Cause: {reason}",
        reason=reason,
    )


def load():
    """Return the compiled ``_fastpath`` module, or ``None``."""
    if os.environ.get("REPRO_DISABLE_CKERNEL"):
        obs.event("ckernel.disabled", reason="REPRO_DISABLE_CKERNEL set")
        return None
    tag = sysconfig.get_config_var("SOABI") or "generic"
    so_path = _SRC.with_name(f"_fastpath.{tag}.so")
    try:
        stale = (
            not so_path.exists()
            or so_path.stat().st_mtime < _SRC.stat().st_mtime
        )
        if stale:
            ok, detail = _build(so_path)
            if not ok:
                _fallback(detail)
                return None
        spec = importlib.util.spec_from_file_location(
            "repro.online._fastpath", so_path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        obs.event("ckernel.loaded", rebuilt=stale, path=str(so_path))
        return module
    except Exception as exc:
        _fallback(f"{type(exc).__name__}: {exc}")
        return None
