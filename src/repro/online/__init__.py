"""Distributed online scheduling: message bus, Algorithm 3, runtime."""

from .distributed import (
    ChargerAgent,
    MatroidViolationError,
    NegotiationResult,
    negotiate_window,
)
from .messaging import (
    CMD_ACK,
    CMD_NULL,
    CMD_UPDATE,
    Message,
    MessageBus,
    MessageStats,
)
from .ordering import CommitEvent, commit_order_graph, linearize_commits
from .runtime import OnlineRunResult, run_online_baseline, run_online_haste

__all__ = [
    "CMD_ACK",
    "CMD_NULL",
    "CMD_UPDATE",
    "MatroidViolationError",
    "ChargerAgent",
    "CommitEvent",
    "Message",
    "MessageBus",
    "MessageStats",
    "NegotiationResult",
    "commit_order_graph",
    "linearize_commits",
    "OnlineRunResult",
    "negotiate_window",
    "run_online_baseline",
    "run_online_haste",
]
