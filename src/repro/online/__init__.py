"""Distributed online scheduling: message bus, Algorithm 3, runtime."""

from .distributed import ChargerAgent, NegotiationResult, negotiate_window
from .messaging import CMD_NULL, CMD_UPDATE, Message, MessageBus, MessageStats
from .ordering import CommitEvent, commit_order_graph, linearize_commits
from .runtime import OnlineRunResult, run_online_baseline, run_online_haste

__all__ = [
    "CMD_NULL",
    "CMD_UPDATE",
    "ChargerAgent",
    "CommitEvent",
    "Message",
    "MessageBus",
    "MessageStats",
    "NegotiationResult",
    "commit_order_graph",
    "linearize_commits",
    "OnlineRunResult",
    "negotiate_window",
    "run_online_baseline",
    "run_online_haste",
]
