"""Reservoir-sampled and windowed distributions for sustained streams.

The plain :class:`~repro.obs.registry.Histogram` answers "what did this
run's latencies look like overall"; a *sustained* traffic stream
(:mod:`repro.traffic`) needs two more things:

1. *Unbiased retention.*  A first-``N``-observations cap biases
   percentiles toward the start of exactly the long streams the traffic
   generator produces (the load ramps **after** the cap fills).
   :class:`ReservoirSample` keeps a uniform random subset of everything
   seen — Vitter's Algorithm R — from a **seeded, deterministic** stream
   (the seed derives from the metric name), so two runs over the same
   observations retain the same reservoir bit for bit.
2. *Windows.*  Latency under the burst phase of an MMPP stream and
   latency under its calm phase are different populations; one pooled
   histogram hides the tail where the SLO lives.
   :class:`WindowedHistogram` segments observations by a caller-supplied
   window label (load phase, load multiplier, arrival batch) while
   keeping the pooled view, with exact count/sum/min/max per window and
   reservoir-estimated percentiles.

Both are lock-free by design — the traffic harness owns its instances —
but the registry-held histograms wrap them under the registry lock.
"""

from __future__ import annotations

import hashlib
import math
import random

__all__ = ["ReservoirSample", "WindowedHistogram", "reservoir_seed"]


def reservoir_seed(name: str) -> int:
    """A stable 64-bit seed derived from a metric name.

    Process-independent (sha256, not ``hash()``), so the reservoir a
    named histogram retains is reproducible across interpreters — the
    determinism contract the traffic tests pin.
    """
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:8], "big")


class ReservoirSample:
    """Uniform sample of a stream (Algorithm R), seeded and deterministic.

    Exact ``count``/``total``/``min``/``max`` over *everything* observed;
    ``values`` holds a uniform random subset of at most ``capacity``
    observations, so nearest-rank percentiles over it are unbiased
    estimates regardless of stream length or ordering.
    """

    __slots__ = ("capacity", "values", "count", "total", "min", "max", "_rng")

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.values: list[float] = []
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.values) < self.capacity:
            self.values.append(value)
        else:
            # Algorithm R: the i-th observation replaces a reservoir slot
            # with probability capacity/i, keeping the sample uniform.
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                self.values[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained sample; ``q`` in [0, 100]."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def snapshot(self) -> dict:
        """The registry histogram's stable key set (count/mean/min/max/p*)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class WindowedHistogram:
    """Per-window reservoirs plus a pooled one, under one metric name.

    ``observe(value, window="burst")`` feeds both the pooled reservoir
    and the named window's; each window gets its own deterministic seed
    (derived from ``name × window``), so per-window percentiles are as
    reproducible as the pooled ones.  Window creation order is preserved
    (insertion-ordered dict) — snapshots render phases in first-seen
    order, which for a traffic stream is chronological.
    """

    __slots__ = ("name", "capacity", "overall", "_windows")

    DEFAULT_CAPACITY = 8192

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        self.name = name
        self.capacity = capacity
        self.overall = ReservoirSample(capacity, seed=reservoir_seed(name))
        self._windows: dict[str, ReservoirSample] = {}

    def observe(self, value: float, window: str | None = None) -> None:
        self.overall.observe(value)
        if window is not None:
            res = self._windows.get(window)
            if res is None:
                res = self._windows[window] = ReservoirSample(
                    self.capacity, seed=reservoir_seed(f"{self.name}\x1f{window}")
                )
            res.observe(value)

    @property
    def count(self) -> int:
        return self.overall.count

    def window_names(self) -> list[str]:
        return list(self._windows)

    def window(self, name: str) -> ReservoirSample | None:
        return self._windows.get(name)

    def percentile(self, q: float, window: str | None = None) -> float:
        if window is None:
            return self.overall.percentile(q)
        res = self._windows.get(window)
        return res.percentile(q) if res is not None else 0.0

    def snapshot(self) -> dict:
        """Pooled stats plus a ``windows`` sub-dict, stable keys throughout."""
        return {
            **self.overall.snapshot(),
            "windows": {w: r.snapshot() for w, r in self._windows.items()},
        }
