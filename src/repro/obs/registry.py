"""Thread-safe metric registry and wall-clock span tracer.

The registry is the single accumulation point for everything the
schedulers measure about themselves: **counters** (monotone totals —
gain-kernel scans, negotiation messages), **gauges** (last-written
values), **latency histograms** (per-arrival negotiation latency,
Fig. 16's communication-cost denominators), and **spans** (nested
wall-clock timings forming the profile tree `repro-haste profile`
prints).

Design constraints, in order:

1. *Disabled must be free.*  The schedulers call the module-level
   helpers in :mod:`repro.obs` which check one flag before touching the
   registry; hot inner loops are never instrumented per iteration —
   they accumulate plain local ints and fold totals into the registry
   once per run/window.  ``benchmarks/run_benchmarks.py --obs`` measures
   the residue and writes ``BENCH_obs.json``.
2. *Thread-safe.*  Sweeps run trials from thread pools and the parallel
   runner forks workers; every mutation takes a lock, and span nesting
   is tracked per thread (a worker thread's spans never splice into
   another's path).
3. *Bounded.*  Aggregates are O(distinct names); raw span/event records
   are only materialized for attached sinks (:mod:`repro.obs.sinks`).
"""

from __future__ import annotations

import math
import threading
import time

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
]


class Counter:
    """A monotone (well, additive) total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """Last-written value (e.g. which kernel backend is active)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float | None:
        return self._value


class Histogram:
    """Latency/size distribution with nearest-rank percentiles.

    Keeps every observation (runs are bounded: one per arrival, window,
    or scheduler run — not per kernel iteration), so percentiles are
    exact.  ``max_samples`` caps pathological growth; past it the
    summary stats stay exact while percentile queries use the retained
    prefix.
    """

    __slots__ = ("name", "_values", "count", "total", "min", "max",
                 "max_samples", "_lock")

    def __init__(self, name: str, max_samples: int = 100_000) -> None:
        self.name = name
        self._values: list[float] = []
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.max_samples = max_samples
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._values) < self.max_samples:
                self._values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; ``q`` in [0, 100]."""
        with self._lock:
            if not self._values:
                return 0.0
            ordered = sorted(self._values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class _Span:
    """One live ``with registry.span(...)`` frame."""

    __slots__ = ("_reg", "name", "fields", "path", "_t0", "_wall")

    def __init__(self, reg: "MetricRegistry", name: str, fields: dict) -> None:
        self._reg = reg
        self.name = name
        self.fields = fields
        self.path: tuple[str, ...] = (name,)

    def __enter__(self) -> "_Span":
        stack = self._reg._stack()
        if stack:
            self.path = stack[-1].path + (self.name,)
        stack.append(self)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = self._reg._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._reg._record_span(self, duration, failed=exc_type is not None)
        return False


class MetricRegistry:
    """The accumulation point: counters, gauges, histograms, spans, events.

    ``enabled`` gates everything; a disabled registry's helpers are
    bypassed entirely by the module-level wrappers in :mod:`repro.obs`.
    Sinks (:class:`~repro.obs.sinks.Sink`) receive one record per closed
    span and per event, plus a final summary on :meth:`close`.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.sinks: list = []
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: span-path aggregation: path -> [count, total_seconds]
        self._span_agg: dict[tuple[str, ...], list] = {}
        self._local = threading.local()

    # -- primitive accessors (get-or-create) ---------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name)
            return h

    # -- recording ------------------------------------------------------
    def inc(self, name: str, n: int | float = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def event(self, name: str, level: str = "info", **fields) -> None:
        """Record a point-in-time event (e.g. kernel backend selection)."""
        self.inc(f"event.{name}")
        self._emit({
            "kind": "event",
            "name": name,
            "level": level,
            "t": time.time(),
            **({"fields": fields} if fields else {}),
        })

    def span(self, name: str, **fields) -> _Span:
        """Context manager timing a nested wall-clock span."""
        return _Span(self, name, fields)

    # -- span plumbing ---------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record_span(self, span: _Span, duration: float, failed: bool) -> None:
        with self._lock:
            agg = self._span_agg.get(span.path)
            if agg is None:
                self._span_agg[span.path] = [1, duration]
            else:
                agg[0] += 1
                agg[1] += duration
        self.observe(f"span.{span.name}", duration)
        self._emit({
            "kind": "span",
            "name": span.name,
            "path": "/".join(span.path),
            "t": span._wall,
            "dur_s": duration,
            **({"failed": True} if failed else {}),
            **({"fields": span.fields} if span.fields else {}),
        })

    def _emit(self, record: dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    # -- inspection ------------------------------------------------------
    def span_paths(self) -> dict[tuple[str, ...], tuple[int, float]]:
        """First-seen-ordered ``path -> (count, total_seconds)``."""
        with self._lock:
            return {p: (a[0], a[1]) for p, a in self._span_agg.items()}

    def snapshot(self) -> dict:
        """A JSON-able dump of every aggregate in the registry."""
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            histograms = {
                n: h.snapshot() for n, h in self._histograms.items()
            }
            spans = {
                "/".join(p): {"count": a[0], "total_s": a[1]}
                for p, a in self._span_agg.items()
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": spans,
        }

    def reset(self) -> None:
        """Drop all recorded data (sinks are kept attached)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._span_agg.clear()

    def close(self) -> None:
        """Emit the final summary record and close every sink."""
        summary = {"kind": "summary", "t": time.time(), **self.snapshot()}
        for sink in self.sinks:
            sink.emit(summary)
            sink.close()
        self.sinks = []
