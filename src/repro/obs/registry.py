"""Thread-safe metric registry and wall-clock span tracer.

The registry is the single accumulation point for everything the
schedulers measure about themselves: **counters** (monotone totals —
gain-kernel scans, negotiation messages), **gauges** (last-written
values), **latency histograms** (per-arrival negotiation latency,
Fig. 16's communication-cost denominators), and **spans** (nested
wall-clock timings forming the profile tree `repro-haste profile`
prints).

Design constraints, in order:

1. *Disabled must be free.*  The schedulers call the module-level
   helpers in :mod:`repro.obs` which check one flag before touching the
   registry; hot inner loops are never instrumented per iteration —
   they accumulate plain local ints and fold totals into the registry
   once per run/window.  ``benchmarks/run_benchmarks.py --obs`` measures
   the residue and writes ``BENCH_obs.json``.
2. *Thread-safe.*  Sweeps run trials from thread pools and the parallel
   runner forks workers; every mutation takes a lock, and span nesting
   is tracked per thread (a worker thread's spans never splice into
   another's path).
3. *Bounded.*  Aggregates are O(distinct names); raw span/event records
   are only materialized for attached sinks (:mod:`repro.obs.sinks`).
"""

from __future__ import annotations

import threading
import time

from .windows import ReservoirSample, WindowedHistogram, reservoir_seed

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
]


class Counter:
    """A monotone (well, additive) total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """Last-written value (e.g. which kernel backend is active)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float | None:
        return self._value


class Histogram:
    """Latency/size distribution with nearest-rank percentiles.

    Below ``max_samples`` observations every value is retained and the
    percentiles are exact.  Past the cap the summary stats (count, sum,
    min, max, mean) stay exact while percentile queries run over a
    **seeded reservoir** (:class:`~repro.obs.windows.ReservoirSample`,
    Algorithm R): a uniform random subset of the whole stream, so the
    estimates are unbiased however long the stream runs — a
    first-``N``-prefix cap would freeze the percentiles at whatever the
    first phase of a sustained traffic run looked like.  The reservoir's
    rng seed derives from the histogram name, so retention is
    deterministic and reproducible across processes.
    """

    __slots__ = ("name", "max_samples", "_res", "_lock")

    def __init__(self, name: str, max_samples: int = 100_000) -> None:
        self.name = name
        self.max_samples = max_samples
        self._res = ReservoirSample(max_samples, seed=reservoir_seed(name))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._res.observe(value)

    @property
    def _values(self) -> list[float]:
        """The retained sample (kept as an attribute for introspection)."""
        return self._res.values

    @property
    def count(self) -> int:
        return self._res.count

    @property
    def total(self) -> float:
        return self._res.total

    @property
    def min(self) -> float:
        return self._res.min

    @property
    def max(self) -> float:
        return self._res.max

    @property
    def mean(self) -> float:
        return self._res.mean

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained sample; ``q`` in [0, 100]."""
        with self._lock:
            return self._res.percentile(q)

    def snapshot(self) -> dict:
        with self._lock:
            return self._res.snapshot()


class _Span:
    """One live ``with registry.span(...)`` frame."""

    __slots__ = ("_reg", "name", "fields", "path", "_t0", "_wall")

    def __init__(self, reg: "MetricRegistry", name: str, fields: dict) -> None:
        self._reg = reg
        self.name = name
        self.fields = fields
        self.path: tuple[str, ...] = (name,)

    def __enter__(self) -> "_Span":
        stack = self._reg._stack()
        if stack:
            self.path = stack[-1].path + (self.name,)
        stack.append(self)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = self._reg._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._reg._record_span(self, duration, failed=exc_type is not None)
        return False


class MetricRegistry:
    """The accumulation point: counters, gauges, histograms, spans, events.

    ``enabled`` gates everything; a disabled registry's helpers are
    bypassed entirely by the module-level wrappers in :mod:`repro.obs`.
    Sinks (:class:`~repro.obs.sinks.Sink`) receive one record per closed
    span and per event, plus a final summary on :meth:`close`.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.sinks: list = []
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._windowed: dict[str, WindowedHistogram] = {}
        #: span-path aggregation: path -> [count, total_seconds]
        self._span_agg: dict[tuple[str, ...], list] = {}
        self._local = threading.local()

    # -- primitive accessors (get-or-create) ---------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name)
            return h

    def windowed_histogram(self, name: str) -> WindowedHistogram:
        with self._lock:
            w = self._windowed.get(name)
            if w is None:
                w = self._windowed[name] = WindowedHistogram(name)
            return w

    # -- recording ------------------------------------------------------
    def inc(self, name: str, n: int | float = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def observe_windowed(
        self, name: str, value: float, window: str | None = None
    ) -> None:
        """Record into a windowed histogram (e.g. per load phase)."""
        wh = self.windowed_histogram(name)
        with self._lock:
            wh.observe(value, window)

    def event(self, name: str, level: str = "info", **fields) -> None:
        """Record a point-in-time event (e.g. kernel backend selection)."""
        self.inc(f"event.{name}")
        self._emit({
            "kind": "event",
            "name": name,
            "level": level,
            "t": time.time(),
            **({"fields": fields} if fields else {}),
        })

    def span(self, name: str, **fields) -> _Span:
        """Context manager timing a nested wall-clock span."""
        return _Span(self, name, fields)

    # -- span plumbing ---------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record_span(self, span: _Span, duration: float, failed: bool) -> None:
        with self._lock:
            agg = self._span_agg.get(span.path)
            if agg is None:
                self._span_agg[span.path] = [1, duration]
            else:
                agg[0] += 1
                agg[1] += duration
        self.observe(f"span.{span.name}", duration)
        self._emit({
            "kind": "span",
            "name": span.name,
            "path": "/".join(span.path),
            "t": span._wall,
            "dur_s": duration,
            **({"failed": True} if failed else {}),
            **({"fields": span.fields} if span.fields else {}),
        })

    def _emit(self, record: dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    # -- inspection ------------------------------------------------------
    def span_paths(self) -> dict[tuple[str, ...], tuple[int, float]]:
        """First-seen-ordered ``path -> (count, total_seconds)``."""
        with self._lock:
            return {p: (a[0], a[1]) for p, a in self._span_agg.items()}

    def snapshot(self) -> dict:
        """A JSON-able dump of every aggregate in the registry."""
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            histograms = {
                n: h.snapshot() for n, h in self._histograms.items()
            }
            windowed = {
                n: w.snapshot() for n, w in self._windowed.items()
            }
            spans = {
                "/".join(p): {"count": a[0], "total_s": a[1]}
                for p, a in self._span_agg.items()
            }
        snap = {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": spans,
        }
        if windowed:
            snap["windowed"] = windowed
        return snap

    def reset(self) -> None:
        """Drop all recorded data (sinks are kept attached)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._windowed.clear()
            self._span_agg.clear()

    def close(self) -> None:
        """Emit the final summary record and close every sink.

        Idempotent: the summary is flushed at most once per attached sink
        set — a second :meth:`close` (or an ``atexit`` handler racing an
        explicit :func:`repro.obs.shutdown`) finds no sinks and does
        nothing, so repeated set-up/tear-down cycles in one process never
        double-emit.
        """
        sinks, self.sinks = self.sinks, []
        if not sinks:
            return
        summary = {"kind": "summary", "t": time.time(), **self.snapshot()}
        for sink in sinks:
            sink.emit(summary)
            sink.close()
