"""Pluggable sinks for the observability layer.

A sink receives one dict per closed span and per event, plus the final
``{"kind": "summary", ...}`` snapshot when the registry closes:

* :class:`MemorySink` — keeps records in a list; the default when
  tracing is enabled without a file (``repro-haste profile``, tests).
* :class:`JsonlSink` — appends one JSON object per line to a file, the
  ``repro-haste run … --trace out.jsonl`` / ``REPRO_TRACE=out.jsonl``
  format; the summary's counters let post-hoc analysis cross-check the
  per-record stream (e.g. negotiation message totals against each run's
  reported :class:`~repro.online.messaging.MessageStats`).

Records may carry numpy scalars in their fields; the JSONL encoder
coerces anything non-JSON-native through ``int``/``float``/``str``
rather than burdening every instrumentation site with conversions.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

__all__ = ["Sink", "MemorySink", "JsonlSink"]


class Sink:
    """Interface: ``emit`` one record dict; ``close`` flushes resources."""

    def emit(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemorySink(Sink):
    """Collects records in memory (thread-safe append)."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        with self._lock:
            self.records.append(record)


def _coerce(obj):
    """JSON fallback for numpy scalars and other odd field values."""
    for cast in (int, float):
        try:
            return cast(obj)
        except (TypeError, ValueError):
            continue
    return str(obj)


class JsonlSink(Sink):
    """One JSON object per line, flushed on close."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        line = json.dumps(record, default=_coerce)
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()
