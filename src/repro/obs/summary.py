"""Human-readable rendering of a registry's contents.

``repro-haste profile <exp>`` runs an experiment under an enabled
registry and prints :func:`format_summary`: the nested span tree
(count × total × mean per path), then counters, gauges, and histogram
percentiles.  The same text is useful interactively::

    from repro import obs
    reg = obs.configure()
    ...   # run schedulers
    print(obs.format_summary(reg))
"""

from __future__ import annotations

from .registry import MetricRegistry

__all__ = ["format_summary", "format_span_tree"]


def _tree_order(paths) -> list[tuple[str, ...]]:
    """Depth-first print order: parents before children, siblings in
    first-seen order.  (The aggregation dict is in *close* order, where a
    child precedes the parent it nests under.)"""
    first_seen = {p: i for i, p in enumerate(paths)}

    def key(path: tuple[str, ...]):
        return tuple(
            first_seen.get(path[: d + 1], first_seen[path])
            for d in range(len(path))
        )

    return sorted(paths, key=key)


def format_span_tree(registry: MetricRegistry) -> str:
    """The nested wall-clock span tree, indented by call depth."""
    paths = registry.span_paths()
    if not paths:
        return "(no spans recorded)"
    lines = ["span tree (count, total, mean):"]
    name_width = max(2 * (len(p) - 1) + len(p[-1]) for p in paths) + 2
    for path in _tree_order(paths):
        count, total = paths[path]
        indent = "  " * (len(path) - 1)
        label = f"{indent}{path[-1]}"
        mean = total / count if count else 0.0
        lines.append(
            f"  {label:<{name_width}s} {count:>7d}x {total:>10.4f}s "
            f"{mean * 1e3:>10.3f}ms/call"
        )
    return "\n".join(lines)


def format_summary(registry: MetricRegistry) -> str:
    """Span tree + counters + gauges + histogram percentiles."""
    snap = registry.snapshot()
    parts = [format_span_tree(registry)]

    counters = {
        n: v for n, v in sorted(snap["counters"].items())
        if not n.startswith("event.")
    }
    events = {
        n[len("event."):]: v
        for n, v in sorted(snap["counters"].items())
        if n.startswith("event.")
    }
    if counters:
        width = max(len(n) for n in counters) + 2
        parts.append("counters:")
        parts.extend(f"  {n:<{width}s} {v}" for n, v in counters.items())
    if events:
        width = max(len(n) for n in events) + 2
        parts.append("events:")
        parts.extend(f"  {n:<{width}s} {v}" for n, v in events.items())
    gauges = {
        n: v for n, v in sorted(snap["gauges"].items()) if v is not None
    }
    if gauges:
        width = max(len(n) for n in gauges) + 2
        parts.append("gauges:")
        parts.extend(f"  {n:<{width}s} {v}" for n, v in gauges.items())
    hists = {
        n: h for n, h in sorted(snap["histograms"].items()) if h["count"]
    }
    if hists:
        width = max(len(n) for n in hists) + 2
        parts.append("histograms (count / mean / p50 / p90 / p99 / max):")
        for n, h in hists.items():
            parts.append(
                f"  {n:<{width}s} {h['count']:>7d}  "
                f"{h['mean']:.4g}  {h['p50']:.4g}  {h['p90']:.4g}  "
                f"{h['p99']:.4g}  {h['max']:.4g}"
            )
    windowed = {
        n: w for n, w in sorted(snap.get("windowed", {}).items()) if w["count"]
    }
    if windowed:
        parts.append("windowed histograms (window: count / p50 / p99):")
        for n, w in windowed.items():
            parts.append(f"  {n} (overall {w['count']:d}: "
                         f"{w['p50']:.4g} / {w['p99']:.4g})")
            for win, ws in w["windows"].items():
                parts.append(
                    f"    {win:<18s} {ws['count']:>7d}  "
                    f"{ws['p50']:.4g}  {ws['p99']:.4g}"
                )
    return "\n".join(parts)
