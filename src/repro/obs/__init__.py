"""repro.obs — unified instrumentation: metrics, trace spans, run telemetry.

One global :class:`~repro.obs.registry.MetricRegistry` serves the whole
process.  It starts **disabled**: every instrumentation site in the
schedulers goes through the module-level helpers below, which check one
flag and return immediately — the disabled path is a dict-free,
lock-free no-op (``BENCH_obs.json`` records its measured cost on the
PR 1 kernel benchmarks).  Hot inner loops are never instrumented per
iteration; they accumulate plain local counters and fold totals into
the registry once per run / negotiation window.

Enabling::

    from repro import obs

    reg = obs.configure()                     # in-memory sink
    reg = obs.configure(trace="out.jsonl")    # + JSONL file emitter
    ...                                       # run schedulers
    print(obs.format_summary(reg))
    obs.shutdown()                            # flush + close sinks

or from the environment, picked up at import time::

    REPRO_TRACE=1 python ...                  # in-memory registry
    REPRO_TRACE=out.jsonl repro-haste run fig16   # JSONL trace file

(the CLI's ``repro-haste run … --trace out.jsonl`` and ``repro-haste
profile <exp>`` set the same machinery up per invocation).

Instrumented surfaces
---------------------
* ``offline.run`` spans + ``offline.*`` counters — Algorithm 2 rounds,
  gain evaluations, and the lazy sweep's fresh/cached/pruned split
  (:mod:`repro.offline.centralized`, :mod:`repro.offline.lazy`);
* ``online.run`` / ``online.arrival`` spans (per-arrival negotiation
  latency histogram) and ``negotiation.*`` counters — messages, rounds,
  broadcasts, commits, proposal-cache hit rates, exactly the
  :class:`~repro.online.messaging.MessageStats` quantities of Fig. 16
  (:mod:`repro.online.runtime`, :mod:`repro.online.distributed`);
* ``sim.execute`` spans + ``sim.*`` counters — ground-truth slot
  execution (:mod:`repro.sim.engine`);
* ``ckernel.*`` events — which negotiation-kernel backend loaded, and a
  one-time ``RuntimeWarning`` when compilation fails and the run
  silently degrades to NumPy (:mod:`repro.online._ckernel`);
* ``serve.*`` counters/gauges — the serving layer's request funnel
  (``serve.requests``/``rejected``/``errors``, ``serve.queue_depth``,
  the ``serve.request_latency`` windowed histogram,
  ``serve.result_cache_hits``/``misses``, ``serve.inflight_dedup``) and
  its resilience machinery (``serve.deadline_expired``/
  ``deadline_timeouts``, ``serve.degraded``, ``serve.worker_crashes``/
  ``worker_restarts``, ``serve.breaker_trips`` + per-spec
  ``serve.breaker_state.<spec>`` gauges with 0/1/2 =
  closed/half-open/open), plus ``prepared.cache_*`` for the shared
  prepared-state LRU (:mod:`repro.serve.engine`,
  :mod:`repro.serve.resilience`, :mod:`repro.solvers.prepared`).
"""

from __future__ import annotations

import atexit
import os
import threading
import warnings

from .registry import Counter, Gauge, Histogram, MetricRegistry
from .sinks import JsonlSink, MemorySink, Sink
from .summary import format_span_tree, format_summary
from .windows import ReservoirSample, WindowedHistogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricRegistry",
    "ReservoirSample",
    "Sink",
    "WindowedHistogram",
    "configure",
    "enabled",
    "event",
    "format_span_tree",
    "format_summary",
    "get_registry",
    "inc",
    "observe",
    "observe_windowed",
    "set_gauge",
    "shutdown",
    "span",
    "warn_once",
]

_REGISTRY = MetricRegistry(enabled=False)


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


def get_registry() -> MetricRegistry:
    """The process-global registry (enabled or not)."""
    return _REGISTRY


def enabled() -> bool:
    """True when instrumentation is being recorded."""
    return _REGISTRY.enabled


def configure(
    *,
    trace: str | os.PathLike | None = None,
    sink: Sink | None = None,
    fresh: bool = True,
) -> MetricRegistry:
    """Enable the global registry and attach sinks.

    ``trace`` attaches a :class:`JsonlSink` at that path; ``sink``
    attaches any custom sink; with neither, a :class:`MemorySink` is
    attached so records are retrievable.  ``fresh`` resets previously
    recorded aggregates (the default — each CLI invocation or test gets
    its own numbers).

    Safe to call repeatedly in one process (the traffic harness and its
    tests set up and tear down telemetry once per load point): a fresh
    reconfigure detaches and closes the previous sinks *without* emitting
    a summary — a reconfigure starts a new measurement epoch rather than
    ending the old one — and a non-fresh call never attaches a duplicate
    :class:`JsonlSink` for a path that already has a live one.
    """
    reg = _REGISTRY
    if fresh:
        reg.reset()
        old, reg.sinks = reg.sinks, []
        for s in old:
            s.close()
    if trace is not None:
        trace_path = os.fspath(trace)
        already = any(
            isinstance(s, JsonlSink) and os.fspath(s.path) == trace_path
            for s in reg.sinks
        )
        if not already:
            reg.sinks.append(JsonlSink(trace))
    if sink is not None and sink not in reg.sinks:
        reg.sinks.append(sink)
    if not reg.sinks:
        reg.sinks.append(MemorySink())
    reg.enabled = True
    return reg


def shutdown() -> None:
    """Flush the summary record, close sinks, and disable the registry.

    Idempotent: the registry's :meth:`~MetricRegistry.close` detaches the
    sink set before flushing, so a second ``shutdown()`` — or the
    ``atexit`` hook firing after an explicit one — is a no-op instead of
    a double emit.
    """
    reg = _REGISTRY
    reg.close()
    reg.enabled = False


# ----------------------------------------------------------------------
# Fast-path helpers: one flag check, then out.  These are what the
# schedulers call; never touch the registry object in hot code directly.
# ----------------------------------------------------------------------
def span(name: str, **fields):
    """Timed nested span (no-op context manager when disabled)."""
    reg = _REGISTRY
    if not reg.enabled:
        return _NOOP_SPAN
    return reg.span(name, **fields)


def inc(name: str, n: int | float = 1) -> None:
    reg = _REGISTRY
    if reg.enabled:
        reg.inc(name, n)


def observe(name: str, value: float) -> None:
    reg = _REGISTRY
    if reg.enabled:
        reg.observe(name, value)


def observe_windowed(name: str, value: float, window: str | None = None) -> None:
    """Record into a windowed (per-load-phase) histogram when enabled."""
    reg = _REGISTRY
    if reg.enabled:
        reg.observe_windowed(name, value, window)


def set_gauge(name: str, value: float) -> None:
    reg = _REGISTRY
    if reg.enabled:
        reg.set_gauge(name, value)


def event(name: str, level: str = "info", **fields) -> None:
    reg = _REGISTRY
    if reg.enabled:
        reg.event(name, level=level, **fields)


# ----------------------------------------------------------------------
# One-time warnings: always delivered (via the warnings machinery) even
# when tracing is disabled — silent degradation is what they exist to
# prevent — and mirrored as an event record when tracing is enabled.
# ----------------------------------------------------------------------
_warned: set[str] = set()
_warned_lock = threading.Lock()


def warn_once(key: str, message: str, **fields) -> None:
    """Emit ``message`` as a RuntimeWarning once per ``key`` per process."""
    with _warned_lock:
        if key in _warned:
            return
        _warned.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)
    event(key, level="warning", message=message, **fields)


def _reset_warned() -> None:
    """Clear the one-time-warning memory (test helper)."""
    with _warned_lock:
        _warned.clear()


def _configure_from_env(environ=os.environ) -> MetricRegistry | None:
    """Honour ``REPRO_TRACE`` at import: path → JSONL sink, truthy → memory."""
    value = environ.get("REPRO_TRACE", "").strip()
    if not value or value.lower() in ("0", "false", "off"):
        return None
    if value.lower() in ("1", "true", "on", "mem", "memory"):
        reg = configure()
    else:
        reg = configure(trace=value)
    atexit.register(shutdown)
    return reg


_configure_from_env()
