"""repro — Charging Task Scheduling for Directional Wireless Charger Networks.

A full reproduction of the HASTE system (Dai et al., ICPP 2018 / IEEE TMC
2021): the directional charging model, dominant-task-set extraction, the
submodular/partition-matroid formulation, the centralized offline
TabularGreedy scheduler, the distributed online negotiation protocol, the
comparison baselines, exact optimal solvers for small instances, the
simulation and testbed-emulation layers, and one experiment module per
paper figure.

Quick start::

    import numpy as np
    from repro import SimulationConfig, sample_network, schedule_offline
    from repro import execute_schedule

    cfg = SimulationConfig.quick()
    net = sample_network(cfg, np.random.default_rng(0))
    result = schedule_offline(net, num_colors=4, rng=np.random.default_rng(1))
    print(execute_schedule(net, result.schedule, rho=cfg.rho).summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from . import obs
from .core import (
    AnisotropicPowerModel,
    Charger,
    ChargerNetwork,
    ChargingTask,
    DominantSet,
    LinearBoundedUtility,
    LogUtility,
    PowerLawUtility,
    PowerModel,
    Schedule,
    SlotGrid,
    UtilityFunction,
)
from .objective import HasteObjective, HasteSetFunction
from .offline import (
    CentralizedScheduler,
    OfflineResult,
    OptimalResult,
    brute_force_optimal,
    greedy_cover_schedule,
    greedy_utility_schedule,
    optimal_schedule,
    random_schedule,
    schedule_offline,
    smooth_switches,
    static_orientation_schedule,
)
from .online import (
    MessageStats,
    OnlineRunResult,
    negotiate_window,
    run_online_baseline,
    run_online_haste,
)
from .sim import (
    ExecutionResult,
    SimulationConfig,
    SweepResult,
    execute_schedule,
    run_sweep,
    run_trials,
    sample_network,
)

__version__ = "1.0.0"

__all__ = [
    "AnisotropicPowerModel",
    "CentralizedScheduler",
    "Charger",
    "ChargerNetwork",
    "ChargingTask",
    "DominantSet",
    "ExecutionResult",
    "HasteObjective",
    "HasteSetFunction",
    "LinearBoundedUtility",
    "LogUtility",
    "MessageStats",
    "OfflineResult",
    "OnlineRunResult",
    "OptimalResult",
    "PowerLawUtility",
    "PowerModel",
    "Schedule",
    "SimulationConfig",
    "SlotGrid",
    "SweepResult",
    "UtilityFunction",
    "brute_force_optimal",
    "execute_schedule",
    "greedy_cover_schedule",
    "greedy_utility_schedule",
    "negotiate_window",
    "obs",
    "optimal_schedule",
    "random_schedule",
    "run_online_baseline",
    "run_online_haste",
    "run_sweep",
    "run_trials",
    "sample_network",
    "schedule_offline",
    "smooth_switches",
    "static_orientation_schedule",
]
