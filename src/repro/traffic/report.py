"""The :class:`TrafficReport` — what a sustained traffic run produced.

One report covers one ``(model, solver spec)`` pair swept over one or
more load multipliers.  Each load point records the stream digest (the
replay witness), the arrival/latency distribution overall and per load
phase, throughput, and the executed utility; the report derives the
utility-vs-load and latency-vs-load curves the SLO dashboards plot.

Determinism: wall-clock quantities (latencies, throughput) vary run to
run, but everything the stream and the solver *decide* is seeded.
:meth:`TrafficReport.content_hash` covers exactly the deterministic
subset — model, spec, per-load digests, arrival counts, event counts,
utilities, and per-phase arrival tallies — so the determinism tests can
assert two same-seed runs produce bit-identical reports without pinning
timing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = ["TrafficReport", "REPORT_FORMAT"]

REPORT_FORMAT = "repro-haste-traffic-report-v1"

#: Per-load-point keys that are deterministic given the seed (everything
#: else — latency percentiles, throughput, gauges — is wall-clock).
_DETERMINISTIC_POINT_KEYS = (
    "load",
    "digest",
    "horizon",
    "arrivals",
    "events",
    "utility",
    "relaxed_utility",
    "phase_arrivals",
)


@dataclass
class TrafficReport:
    """Results of one traffic run: model + spec + one dict per load point.

    Each entry of ``points`` is a plain-scalar dict with keys::

        load, digest, horizon, arrivals, events, offered_per_slot,
        utility, relaxed_utility, plan_s, wall_s,
        sustained_arrivals_per_s, latency (count/mean/p50/p90/p99/max/
        source), phases ({phase: {arrivals, count, p50, p99}}),
        phase_arrivals ({phase: int}), gauges ({name: value})

    ``latency.source`` is ``"spans"`` when per-arrival negotiation spans
    were captured live and ``"fallback"`` when latency had to be imputed
    as plan-time / events (telemetry off, or sharded solves whose spans
    live in subprocess workers).
    """

    model: dict = field(default_factory=dict)
    spec: str = "online-haste"
    kernel: str = "unknown"
    points: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived curves
    # ------------------------------------------------------------------
    def utility_vs_load(self) -> list[tuple[float, float]]:
        return [(p["load"], p["utility"]) for p in self.points]

    def latency_vs_load(self, q: str = "p99") -> list[tuple[float, float]]:
        return [(p["load"], p["latency"][q]) for p in self.points]

    def point(self, load: float) -> dict:
        for p in self.points:
            if p["load"] == load:
                return p
        raise KeyError(f"no load point {load!r} in report")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "model": dict(self.model),
            "spec": self.spec,
            "kernel": self.kernel,
            "points": [dict(p) for p in self.points],
            "utility_vs_load": self.utility_vs_load(),
            "latency_vs_load": self.latency_vs_load(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrafficReport":
        if payload.get("format") != REPORT_FORMAT:
            raise ValueError(f"unknown report format {payload.get('format')!r}")
        return cls(
            model=dict(payload["model"]),
            spec=payload["spec"],
            kernel=payload.get("kernel", "unknown"),
            points=[dict(p) for p in payload["points"]],
        )

    def save(self, path) -> None:
        with open(str(path), "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path) -> "TrafficReport":
        with open(str(path), "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # ------------------------------------------------------------------
    # Determinism witness
    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """sha256 over the seed-determined subset (no wall-clock fields)."""
        payload = {
            "model": dict(self.model),
            "spec": self.spec,
            "points": [
                {k: p.get(k) for k in _DETERMINISTIC_POINT_KEYS}
                for p in self.points
            ],
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        lines = [
            f"traffic report: {self.model.get('process', '?')} × "
            f"{self.spec} [{self.kernel} kernel]",
            "  load   arrivals  events  util      p50ms    p99ms   "
            "sust/s  src",
        ]
        for p in self.points:
            lat = p["latency"]
            lines.append(
                f"  {p['load']:<6g} {p['arrivals']:>8d} {p['events']:>7d}  "
                f"{p['utility']:<8.5g} {lat['p50'] * 1e3:>8.2f} "
                f"{lat['p99'] * 1e3:>8.2f} {p['sustained_arrivals_per_s']:>7.1f}"
                f"  {lat['source']}"
            )
            for phase, ps in sorted(p.get("phases", {}).items()):
                lines.append(
                    f"         · {phase:<10s} arrivals={ps['arrivals']:<6d}"
                    f" p50={ps['p50'] * 1e3:.2f}ms p99={ps['p99'] * 1e3:.2f}ms"
                )
        return "\n".join(lines)
