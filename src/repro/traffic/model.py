"""The traffic model: a seeded, replayable description of a workload stream.

A :class:`TrafficModel` is to load generation what
:class:`~repro.faults.model.FaultModel` is to the radio: a small frozen
value object that fully determines a stream of task arrivals — the
arrival process and its knobs, the load multiplier, the fleet-size and
hot-spot scaling, the horizon, and one seed.  ``model.stream(config)``
materializes the stream as a :class:`TrafficStream`: per-slot arrival
counts, per-slot load-phase labels, and a complete serializable
:class:`~repro.solvers.instance.Instance` whose tasks release exactly at
the sampled arrival slots — so any registered online solver spec
(``online-haste``, ``online-haste:shards=4``,
``online-haste:loss=0.1,crash=2``) consumes the stream through the
ordinary registry path with no code changes.

Replayability contract
----------------------
All stream randomness comes from one generator seeded by
``TrafficModel.seed`` and consumed in a fixed order (charger placement,
arrival counts/phases, hot-spot center, then per-task position /
duration / orientation / energy).  The same ``(model, config)`` pair
therefore yields byte-identical streams, and :meth:`TrafficStream.digest`
is the sha256 witness the SLO gate and the determinism tests pin.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

import numpy as np

from ..core.geometry import wrap_angle
from ..sim.config import SimulationConfig
from ..sim.topology import uniform_positions
from ..solvers.instance import Instance
from .processes import PROCESS_NAMES, ArrivalProcess, make_process

__all__ = ["TrafficModel", "TrafficStream"]


@dataclass(frozen=True)
class TrafficModel:
    """Everything that determines a workload stream, as one frozen value.

    ``rate`` is the mean arrivals per slot at ``load = 1``; the sweep
    knob is ``load`` (the effective rate is ``rate × load``).
    ``fleet_scale`` grows the charger fleet and the field area together
    (constant charger density), ``hotspot_frac`` routes that fraction of
    arrivals into a small seeded disc (skewed spatial load), and
    ``horizon_slots`` defaults to the config's horizon.
    """

    process: str = "poisson"  # poisson | mmpp | diurnal
    rate: float = 2.0
    load: float = 1.0
    horizon_slots: int | None = None
    # MMPP knobs
    burst_factor: float = 6.0
    burst_prob: float = 0.08
    calm_prob: float = 0.35
    # Diurnal knobs
    period_slots: int = 24
    amplitude: float = 0.8
    # Fleet / spatial scaling knobs
    fleet_scale: float = 1.0
    hotspot_frac: float = 0.0
    hotspot_radius: float = 0.15  # relative to field size
    seed: int = 0

    def __post_init__(self) -> None:
        if self.process not in PROCESS_NAMES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; "
                f"known: {', '.join(PROCESS_NAMES)}"
            )
        if self.rate < 0.0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.load < 0.0:
            raise ValueError(f"load must be >= 0, got {self.load}")
        if self.horizon_slots is not None and self.horizon_slots < 0:
            raise ValueError(
                f"horizon_slots must be >= 0, got {self.horizon_slots}"
            )
        if self.fleet_scale <= 0.0:
            raise ValueError(
                f"fleet_scale must be > 0, got {self.fleet_scale}"
            )
        if not (0.0 <= self.hotspot_frac <= 1.0):
            raise ValueError(
                f"hotspot_frac must be in [0, 1], got {self.hotspot_frac}"
            )
        if not (0.0 < self.hotspot_radius <= 1.0):
            raise ValueError(
                f"hotspot_radius must be in (0, 1], got {self.hotspot_radius}"
            )

    def with_load(self, load: float) -> "TrafficModel":
        """The same model at a different load multiplier (sweep knob)."""
        return dataclasses.replace(self, load=float(load))

    def arrival_process(self) -> ArrivalProcess:
        """The configured process at the effective (load-scaled) rate."""
        return make_process(
            self.process,
            self.rate * self.load,
            burst_factor=self.burst_factor,
            burst_prob=self.burst_prob,
            calm_prob=self.calm_prob,
            period_slots=self.period_slots,
            amplitude=self.amplitude,
        )

    def as_dict(self) -> dict:
        """Plain-scalar form (report serialization)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "TrafficModel":
        return cls(**payload)

    # ------------------------------------------------------------------
    # Stream materialization
    # ------------------------------------------------------------------
    def stream(self, config: SimulationConfig) -> "TrafficStream":
        """Materialize the stream this model describes over ``config``.

        The fixed draw order documented in the module docstring is the
        replayability contract — do not reorder.
        """
        rng = np.random.default_rng(self.seed)
        n = max(1, int(round(config.num_chargers * self.fleet_scale)))
        field = float(config.field_size * np.sqrt(self.fleet_scale))
        horizon = (
            int(self.horizon_slots)
            if self.horizon_slots is not None
            else int(config.horizon_slots)
        )

        charger_xy = uniform_positions(rng, n, field)
        counts, phases = self.arrival_process().sample(horizon, rng)
        m = int(counts.sum())

        if self.hotspot_frac > 0.0:
            center = rng.uniform(0.25 * field, 0.75 * field, size=2)
            radius = self.hotspot_radius * field
        else:
            center, radius = None, 0.0

        release = np.repeat(np.arange(horizon, dtype=np.int64), counts)
        task_xy = np.zeros((m, 2), dtype=float)
        end = np.zeros(m, dtype=np.int64)
        orientation = np.zeros(m, dtype=float)
        energy = np.zeros(m, dtype=float)
        d_lo = int(config.duration_slots_min)
        d_hi = int(config.duration_slots_max)
        for j in range(m):
            if center is not None and rng.random() < self.hotspot_frac:
                # Uniform over the hot-spot disc, clipped to the field.
                r = radius * np.sqrt(rng.random())
                theta = rng.uniform(0.0, 2.0 * np.pi)
                xy = center + r * np.array([np.cos(theta), np.sin(theta)])
                task_xy[j] = np.clip(xy, 0.0, field)
            else:
                task_xy[j] = rng.uniform(0.0, field, size=2)
            duration = int(rng.integers(d_lo, d_hi + 1))
            end[j] = release[j] + duration
            orientation[j] = float(wrap_angle(rng.uniform(0.0, 2.0 * np.pi)))
            energy[j] = float(rng.uniform(config.energy_min, config.energy_max))

        # The stream's config: scaled fleet, actual task count (so the
        # paper's w_j = 1/m default holds for the stream), and a horizon
        # wide enough for the longest in-flight task.
        max_end = int(end.max()) if m else horizon
        stream_config = config.replace(
            num_chargers=n,
            num_tasks=m,
            field_size=field,
            horizon_slots=max(max_end, horizon, config.duration_slots_max),
        )
        weight = stream_config.weight
        instance = Instance(
            config=stream_config,
            seed=self.seed,
            charger_xy=charger_xy,
            charger_angle=np.full(n, float(config.charging_angle)),
            charger_radius=np.full(n, float(config.radius)),
            task_xy=task_xy,
            task_orientation=orientation,
            release_slots=release,
            end_slots=end,
            required_energy=energy,
            receiving_angle=np.full(m, float(config.receiving_angle)),
            weights=np.full(m, float(weight)),
            alpha=float(config.alpha),
            beta=float(config.beta),
            gain_exponent=None,
            slot_seconds=float(config.slot_seconds),
        )
        return TrafficStream(
            model=self,
            config=stream_config,
            counts=counts,
            phases=tuple(phases),
            instance=instance,
        )


@dataclass
class TrafficStream:
    """One materialized stream: counts + phases + the solvable instance."""

    model: TrafficModel
    config: SimulationConfig
    counts: np.ndarray  # (horizon,) arrivals per slot
    phases: tuple[str, ...]  # (horizon,) load-phase label per slot
    instance: Instance

    @property
    def horizon(self) -> int:
        return int(self.counts.shape[0])

    @property
    def arrivals(self) -> int:
        return int(self.counts.sum())

    @property
    def offered_per_slot(self) -> float:
        """Realized mean arrivals per slot over the stream."""
        return self.arrivals / self.horizon if self.horizon else 0.0

    def phase_of_slot(self, slot: int) -> str:
        """The load phase a given slot belongs to."""
        if not self.phases:
            return "steady"
        return self.phases[min(max(int(slot), 0), len(self.phases) - 1)]

    def digest(self) -> str:
        """sha256 witness of the whole stream (counts, phases, instance).

        Stable across processes — the SLO baseline pins it so a gate run
        provably replays the exact stream the baseline was recorded on.
        """
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(self.counts, dtype=np.int64).tobytes())
        h.update("|".join(self.phases).encode())
        h.update(self.instance.content_hash().encode())
        return h.hexdigest()

    def describe(self) -> str:
        m = self.model
        return (
            f"TrafficStream({m.process}, rate={m.rate:g}×{m.load:g}, "
            f"horizon={self.horizon}, arrivals={self.arrivals}, "
            f"n={self.instance.n}, digest={self.digest()[:12]})"
        )
