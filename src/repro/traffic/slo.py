"""The SLO regression gate: compare a traffic run against a pinned baseline.

CI replays a pinned tiny-scale stream (``benchmarks/slo_baseline.json``)
in both kernel modes and fails when the run regresses against the
committed baseline:

* **utility** — deterministic given the seed, so the comparison is
  tight: a drop of more than ``utility_slack`` (2 %) fails.  A *digest*
  mismatch fails first — it means the run did not replay the stream the
  baseline was recorded on, and any utility comparison would be
  meaningless.
* **p99 latency** — wall-clock, so the raw threshold (+15 %) is scaled
  by a **host-speed calibration**: both the baseline recording and the
  gate run time the same fixed seeded NumPy workload
  (:func:`run_calibration`), and the latency budget stretches or
  shrinks by the ratio of the two, clamped to a sanity band so a broken
  calibration can't silently disable the gate.

Baseline schema (one file, one entry per kernel mode)::

    {"format": "repro-haste-slo-baseline-v1",
     "model": {...TrafficModel...}, "spec": "online-haste",
     "loads": [...],
     "modes": {"numpy":    {"calib_s": ..., "points": [
                   {"load":..., "digest":..., "utility":..., "p99_s":...}]},
               "compiled": {...}}}
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from .report import TrafficReport

__all__ = [
    "BASELINE_FORMAT",
    "SLOResult",
    "run_calibration",
    "update_baseline",
    "evaluate_slo",
    "load_baseline",
    "save_baseline",
]

BASELINE_FORMAT = "repro-haste-slo-baseline-v1"

#: Gate defaults: p99 +15 %, utility −2 %.
LATENCY_SLACK = 0.15
UTILITY_SLACK = 0.02

#: Absolute grace added to every p99 budget.  The CI stream is tiny, so
#: its p99 sits in single-digit milliseconds where scheduler jitter alone
#: exceeds 15 %; a regression must clear the relative slack *plus* this
#: floor (an injected slowdown of tens of ms still trips the gate).
LATENCY_FLOOR_S = 0.005

#: Host-speed ratio sanity band: outside it the calibration itself is
#: suspect (wrong units, a stuck clock) and the gate fails loudly.
CALIB_RATIO_MIN = 0.25
CALIB_RATIO_MAX = 8.0


def run_calibration(repeats: int = 3) -> float:
    """Median seconds of a fixed, seeded NumPy workload on this host.

    The workload is deliberately kernel-agnostic (pure NumPy matmuls) so
    it measures the machine, not the repo: the compiled/numpy negotiation
    paths share one calibration per host.
    """
    a = np.random.default_rng(2018).standard_normal((192, 192))
    times = []
    for _ in range(max(1, repeats)):
        b = np.eye(192)
        start = time.perf_counter()
        for _ in range(24):
            b = np.tanh(b @ a * 0.05)
        times.append(time.perf_counter() - start)
        # Fold the result into a scalar so the work can't be elided.
        _ = float(b.sum())
    return float(sorted(times)[len(times) // 2])


@dataclass
class SLOResult:
    """Outcome of one gate evaluation."""

    passed: bool
    mode: str
    failures: list = field(default_factory=list)
    details: list = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"SLO gate [{self.mode}]: {'PASS' if self.passed else 'FAIL'}"
        ]
        for d in self.details:
            lines.append(
                f"  load {d['load']:g}: utility {d['utility']:.5g} "
                f"(floor {d['utility_floor']:.5g}), "
                f"p99 {d['p99_s'] * 1e3:.2f}ms "
                f"(budget {d['p99_budget_s'] * 1e3:.2f}ms, "
                f"host ratio {d['calib_ratio']:.2f})"
            )
        for f in self.failures:
            lines.append(f"  FAIL: {f}")
        return "\n".join(lines)


def load_baseline(path) -> dict:
    with open(str(path), "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"unknown baseline format {baseline.get('format')!r}"
        )
    return baseline


def save_baseline(baseline: dict, path) -> None:
    with open(str(path), "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")


def update_baseline(
    baseline: dict | None, report: TrafficReport, calib_s: float
) -> dict:
    """Record ``report``'s kernel mode into ``baseline`` (new dict if None).

    The model/spec/loads header is written on first update and must match
    on later ones — one baseline file describes one pinned stream.
    """
    loads = [p["load"] for p in report.points]
    if baseline is None:
        baseline = {
            "format": BASELINE_FORMAT,
            "model": dict(report.model),
            "spec": report.spec,
            "loads": loads,
            "modes": {},
        }
    else:
        if baseline.get("model") != report.model or baseline.get("spec") != report.spec:
            raise ValueError(
                "baseline model/spec does not match the report; "
                "regenerate the whole baseline file"
            )
    baseline["modes"][report.kernel] = {
        "calib_s": float(calib_s),
        "points": [
            {
                "load": p["load"],
                "digest": p["digest"],
                "utility": p["utility"],
                "p99_s": p["latency"]["p99"],
            }
            for p in report.points
        ],
    }
    return baseline


def evaluate_slo(
    report: TrafficReport,
    baseline: dict,
    *,
    calib_s: float | None = None,
    latency_slack: float = LATENCY_SLACK,
    utility_slack: float = UTILITY_SLACK,
    latency_floor_s: float = LATENCY_FLOOR_S,
) -> SLOResult:
    """Gate ``report`` against ``baseline`` for the report's kernel mode."""
    mode = report.kernel
    failures: list[str] = []
    details: list[dict] = []

    entry = baseline.get("modes", {}).get(mode)
    if entry is None:
        recorded = ", ".join(sorted(baseline.get("modes", {}))) or "(none)"
        return SLOResult(
            passed=False,
            mode=mode,
            failures=[
                f"baseline has no entry for kernel mode {mode!r} "
                f"(recorded: {recorded})"
            ],
        )

    host_calib = calib_s if calib_s is not None else run_calibration()
    base_calib = float(entry["calib_s"])
    ratio = host_calib / base_calib if base_calib > 0 else float("inf")
    if not (CALIB_RATIO_MIN <= ratio <= CALIB_RATIO_MAX):
        failures.append(
            f"host calibration ratio {ratio:.3g} outside sanity band "
            f"[{CALIB_RATIO_MIN}, {CALIB_RATIO_MAX}] "
            f"(host {host_calib:.4g}s vs baseline {base_calib:.4g}s)"
        )
        ratio = min(max(ratio, CALIB_RATIO_MIN), CALIB_RATIO_MAX)

    base_points = {p["load"]: p for p in entry["points"]}
    for p in report.points:
        load = p["load"]
        base = base_points.get(load)
        if base is None:
            failures.append(f"baseline has no load point {load:g} for {mode}")
            continue
        utility_floor = base["utility"] * (1.0 - utility_slack)
        p99_budget = (
            base["p99_s"] * (1.0 + latency_slack) * ratio + latency_floor_s
        )
        detail = {
            "load": load,
            "digest_ok": p["digest"] == base["digest"],
            "utility": p["utility"],
            "utility_floor": utility_floor,
            "p99_s": p["latency"]["p99"],
            "p99_budget_s": p99_budget,
            "calib_ratio": ratio,
        }
        details.append(detail)
        if not detail["digest_ok"]:
            failures.append(
                f"load {load:g}: stream digest mismatch "
                f"({p['digest'][:12]} != {base['digest'][:12]}) — "
                "the run did not replay the pinned stream"
            )
            continue
        if p["utility"] < utility_floor:
            failures.append(
                f"load {load:g}: utility regression "
                f"{p['utility']:.6g} < {utility_floor:.6g} "
                f"(baseline {base['utility']:.6g} − {utility_slack:.0%})"
            )
        if p["latency"]["p99"] > p99_budget:
            failures.append(
                f"load {load:g}: p99 latency regression "
                f"{p['latency']['p99'] * 1e3:.2f}ms > "
                f"{p99_budget * 1e3:.2f}ms (baseline "
                f"{base['p99_s'] * 1e3:.2f}ms + {latency_slack:.0%} "
                f"+ {latency_floor_s * 1e3:g}ms floor, "
                f"host ratio {ratio:.2f})"
            )
    missing = sorted(set(base_points) - {p["load"] for p in report.points})
    if missing:
        failures.append(
            f"report is missing baseline load point(s): "
            f"{', '.join(f'{m:g}' for m in missing)}"
        )
    return SLOResult(passed=not failures, mode=mode, failures=failures, details=details)
