"""repro.traffic — production-style workload generation + SLO telemetry.

The paper evaluates HASTE on static batches; this package turns the
online scheduler into something a production readiness review can
interrogate: a seeded, replayable arrival stream
(:class:`~repro.traffic.model.TrafficModel` → ``stream()`` →
:class:`~repro.traffic.model.TrafficStream`, digest-pinned like
:class:`~repro.faults.model.FaultModel` traces), a harness that drives
any registered online solver spec with it while capturing per-arrival
latency into per-load-phase windowed histograms
(:func:`~repro.traffic.harness.run_traffic` →
:class:`~repro.traffic.report.TrafficReport`), and an SLO regression
gate (:func:`~repro.traffic.slo.evaluate_slo`) that CI runs against the
committed ``benchmarks/slo_baseline.json`` in both kernel modes.

Quick start::

    from repro.traffic import TrafficModel, run_traffic

    model = TrafficModel(process="mmpp", rate=2.0, seed=7)
    report = run_traffic(model, spec="online-haste",
                         loads=(0.5, 1.0, 2.0))
    print(report.summary())
"""

from .harness import (
    ArrivalLatencyCollector,
    DriveResult,
    drive_stream,
    kernel_mode,
    run_traffic,
)
from .model import TrafficModel, TrafficStream
from .processes import (
    PROCESS_NAMES,
    ArrivalProcess,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    make_process,
)
from .report import TrafficReport
from .slo import (
    SLOResult,
    evaluate_slo,
    load_baseline,
    run_calibration,
    save_baseline,
    update_baseline,
)

__all__ = [
    "ArrivalLatencyCollector",
    "ArrivalProcess",
    "DiurnalProcess",
    "DriveResult",
    "MMPPProcess",
    "PROCESS_NAMES",
    "PoissonProcess",
    "SLOResult",
    "TrafficModel",
    "TrafficReport",
    "TrafficStream",
    "drive_stream",
    "evaluate_slo",
    "kernel_mode",
    "load_baseline",
    "make_process",
    "run_calibration",
    "run_traffic",
    "save_baseline",
    "update_baseline",
]
