"""The traffic harness: drive a solver spec with a sustained stream.

:func:`drive_stream` runs one materialized :class:`TrafficStream`
through the solver registry — any online spec works unchanged,
including ``shards=S`` and fault-injected ones — and captures the
per-arrival negotiation latencies; :func:`run_traffic` sweeps a
:class:`TrafficModel` over load multipliers and assembles the
:class:`TrafficReport`.

Latency capture has two sources, recorded honestly in the report:

* **spans** — when :mod:`repro.obs` is enabled, the harness attaches a
  tiny collector sink for the duration of the solve and reads each
  ``online.arrival`` span (slot + duration) straight off the record
  stream.  Each latency is bucketed into the stream's load phase for
  that slot and fed to the windowed histograms.
* **fallback** — with telemetry off (the <2 %-overhead mode benchmarked
  by ``BENCH_traffic.json``) or when the spans never reach this process
  (``shards=S`` negotiates in subprocess workers), per-arrival latency
  is imputed as plan-time / events, attributed to the arrival slots in
  order.

The harness only *borrows* the global obs registry: when telemetry is
requested and the registry is disabled it configures and later shuts it
down itself; when the caller already enabled obs, sinks and lifecycle
stay untouched beyond the temporary collector.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..obs.sinks import Sink
from ..obs.windows import WindowedHistogram
from ..sim.config import SimulationConfig
from ..solvers.artifact import RunArtifact
from ..solvers.registry import get_solver
from .model import TrafficModel, TrafficStream
from .report import TrafficReport

__all__ = [
    "ArrivalLatencyCollector",
    "DriveResult",
    "drive_stream",
    "run_traffic",
    "kernel_mode",
]

#: Windowed-histogram metric fed per arrival (window = load phase).
LATENCY_METRIC = "traffic.arrival_latency"


def kernel_mode() -> str:
    """Which negotiation kernel this process runs: ``compiled``/``numpy``."""
    from ..online import _ckernel

    return "compiled" if _ckernel.load() is not None else "numpy"


class ArrivalLatencyCollector(Sink):
    """Collects ``online.arrival`` span records: ``(slot, seconds)``."""

    def __init__(self) -> None:
        self.samples: list[tuple[int, float]] = []

    def emit(self, record: dict) -> None:
        if record.get("kind") == "span" and record.get("name") == "online.arrival":
            fields = record.get("fields") or {}
            self.samples.append((int(fields.get("slot", -1)), float(record["dur_s"])))


@dataclass
class DriveResult:
    """One stream driven through one spec."""

    artifact: RunArtifact
    #: per-arrival ``(slot, latency_seconds)``, in arrival order
    latencies: list = field(default_factory=list)
    #: ``"spans"`` (measured) or ``"fallback"`` (imputed plan_s / events)
    latency_source: str = "fallback"
    wall_s: float = 0.0
    #: the engine's degradation ladder answered (engine drives only)
    degraded: bool = False
    #: the spec that degraded answer came from, when ``degraded``
    degraded_from: str | None = None


def _fallback_latencies(stream: TrafficStream, artifact: RunArtifact) -> list:
    """Impute per-arrival latency as plan-time / events over arrival slots."""
    events = int(artifact.events)
    if events <= 0:
        return []
    plan_s = float(artifact.meta.get("plan_s", artifact.wall_time_s))
    per_event = plan_s / events
    slots = sorted(
        {int(s) for s in np.asarray(stream.instance.release_slots).tolist()}
    )
    return [(slot, per_event) for slot in slots[:events]]


def drive_stream(
    stream: TrafficStream,
    spec: str = "online-haste",
    *,
    telemetry: bool = True,
    seed: int | None = None,
    engine=None,
    deadline_s: float | None = None,
) -> DriveResult:
    """Run ``stream`` through ``spec`` and capture per-arrival latencies.

    ``seed`` defaults to the stream's own model seed, so repeated drives
    of the same stream hand the solver an identical rng stream.

    ``engine`` routes the solve through a
    :class:`~repro.serve.engine.ScheduleEngine` instead of a raw
    ``solve_from_instance`` — the serving hot path, sharing prepared
    state with every other request for the stream's ``content_hash``.
    The result cache is bypassed on purpose: a traffic drive measures
    the solve, and span capture needs the negotiation to actually run
    (the engine's worker threads feed the same global obs registry, so
    the collector sees their ``online.arrival`` spans unchanged).
    ``deadline_s`` threads a per-request budget into the engine: when it
    (or the engine's circuit breaker) trips, the drive returns the
    ladder's degraded-but-valid schedule, flagged on the result and in
    the report point.
    """
    solver = get_solver(spec)
    if stream.instance.m == 0:
        # An empty stream has nothing to schedule: the objective layer
        # (rightly) refuses task-free networks, so short-circuit with an
        # empty artifact instead of forcing every caller to special-case.
        empty = RunArtifact(solver=solver.canonical(), meta={"plan_s": 0.0})
        return DriveResult(artifact=empty)
    effective = seed if seed is not None else stream.model.seed
    collector: ArrivalLatencyCollector | None = None
    reg = obs.get_registry()
    if telemetry and reg.enabled:
        collector = ArrivalLatencyCollector()
        reg.sinks.append(collector)
    start = time.perf_counter()
    degraded = False
    degraded_from: str | None = None
    try:
        if engine is not None:
            served = engine.solve(
                spec,
                stream.instance,
                seed=effective,
                config=stream.config,
                use_result_cache=False,
                deadline_s=deadline_s,
            )
            artifact = served.artifact
            degraded = bool(served.degraded)
            degraded_from = served.degraded_from
        else:
            rng = np.random.default_rng(effective)
            artifact = solver.solve_from_instance(
                stream.instance, rng, stream.config
            )
    finally:
        if collector is not None and collector in reg.sinks:
            reg.sinks.remove(collector)
    wall = time.perf_counter() - start

    if collector is not None and collector.samples:
        latencies = list(collector.samples)
        source = "spans"
    else:
        latencies = _fallback_latencies(stream, artifact)
        source = "fallback"
    return DriveResult(
        artifact=artifact,
        latencies=latencies,
        latency_source=source,
        wall_s=wall,
        degraded=degraded,
        degraded_from=degraded_from,
    )


def _phase_arrivals(stream: TrafficStream) -> dict[str, int]:
    """Arrivals per load phase (deterministic — part of the report hash)."""
    tally: dict[str, int] = {}
    counts = np.asarray(stream.counts)
    for k, phase in enumerate(stream.phases):
        tally[phase] = tally.get(phase, 0) + int(counts[k])
    return tally


def _online_gauges() -> dict[str, float]:
    """The runtime's queue-depth gauges, if the registry recorded any."""
    if not obs.enabled():
        return {}
    snap = obs.get_registry().snapshot()
    return {
        name: value
        for name, value in snap.get("gauges", {}).items()
        if name.startswith("online.") and value is not None
    }


def _load_point(
    stream: TrafficStream, drive: DriveResult, load: float
) -> dict:
    """Assemble one report entry from a driven stream."""
    # A local windowed histogram always backs the report (works with obs
    # off); the shared registry metric is fed too when obs is live, so
    # `repro-haste profile`-style summaries see the same distribution.
    wh = WindowedHistogram(f"{LATENCY_METRIC}@{load:g}")
    live = obs.enabled()
    for slot, dur in drive.latencies:
        phase = stream.phase_of_slot(slot)
        wh.observe(dur, window=phase)
        if live:
            obs.observe_windowed(LATENCY_METRIC, dur, window=phase)

    snap = wh.snapshot()
    art = drive.artifact
    phases = {}
    phase_arrivals = _phase_arrivals(stream)
    for phase, ws in snap["windows"].items():
        phases[phase] = {
            "arrivals": phase_arrivals.get(phase, 0),
            "count": ws["count"],
            "p50": ws["p50"],
            "p99": ws["p99"],
        }
    wall = drive.wall_s if drive.wall_s > 0 else float(art.wall_time_s)
    return {
        "load": float(load),
        "digest": stream.digest(),
        "horizon": stream.horizon,
        "arrivals": stream.arrivals,
        "events": int(art.events),
        "offered_per_slot": stream.offered_per_slot,
        "utility": float(art.total_utility),
        "relaxed_utility": float(art.relaxed_utility),
        "plan_s": float(art.meta.get("plan_s", art.wall_time_s)),
        "wall_s": wall,
        "sustained_arrivals_per_s": (stream.arrivals / wall if wall > 0 else 0.0),
        "latency": {
            "count": snap["count"],
            "mean": snap["mean"],
            "p50": snap["p50"],
            "p90": snap["p90"],
            "p99": snap["p99"],
            "max": snap["max"],
            "source": drive.latency_source,
        },
        "phases": phases,
        "phase_arrivals": phase_arrivals,
        "gauges": _online_gauges(),
        # Not part of the deterministic report digest (runtime-dependent).
        "degraded": drive.degraded,
        "degraded_from": drive.degraded_from,
    }


def run_traffic(
    model: TrafficModel,
    config: SimulationConfig | None = None,
    *,
    spec: str = "online-haste",
    loads: tuple = (1.0,),
    telemetry: bool = True,
    engine=None,
) -> TrafficReport:
    """Sweep ``model`` over ``loads`` against ``spec`` → :class:`TrafficReport`.

    With ``telemetry=False`` nothing touches the obs registry and latency
    falls back to the imputed source — the near-zero-overhead mode the
    ``BENCH_traffic.json`` overhead row certifies.  ``engine`` drives
    every load point through a serving
    :class:`~repro.serve.engine.ScheduleEngine` (see :func:`drive_stream`).
    """
    config = config if config is not None else SimulationConfig()
    owns_registry = telemetry and not obs.enabled()
    if owns_registry:
        obs.configure()
    try:
        points = []
        for load in loads:
            stream = model.with_load(float(load)).stream(config)
            drive = drive_stream(stream, spec, telemetry=telemetry, engine=engine)
            points.append(_load_point(stream, drive, float(load)))
    finally:
        if owns_registry:
            obs.shutdown()
    return TrafficReport(
        model=model.as_dict(),
        spec=get_solver(spec).canonical(),
        kernel=kernel_mode(),
        points=points,
    )
