"""Arrival processes: how charging requests land on the fleet over time.

The paper evaluates HASTE on static task batches; production WRSN
charging traffic is a *stream* — and a bursty, time-varying one
(deadline-driven charging request streams, arxiv 1810.12385).  An
:class:`ArrivalProcess` turns a mean request rate into a per-slot arrival
count sequence plus a per-slot **phase label** (the load phase the slot
belongs to), both drawn from the caller's seeded generator so a single
seed pins the whole stream.

Three processes cover the regimes the SLO curves need:

* :class:`PoissonProcess` — memoryless constant-rate arrivals, the
  steady-state floor every queueing result assumes;
* :class:`MMPPProcess` — a 2-state Markov-modulated Poisson process:
  calm slots at the base rate, burst slots at ``burst_factor × rate``,
  with geometric sojourns.  This is the canonical bursty-traffic model
  and the one that separates p50 from p99;
* :class:`DiurnalProcess` — a sinusoidal day/night envelope over Poisson
  arrivals, the fleet-scale load shape (peak/off-peak phases).

``sample(horizon, rng)`` returns ``(counts, phases)``; phases come from
the *sampled* trajectory for the MMPP (the chain is random) and from the
deterministic envelope for the others.  :func:`make_process` maps the
spec-style process name + knobs of a
:class:`~repro.traffic.model.TrafficModel` to an instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "MMPPProcess",
    "DiurnalProcess",
    "PROCESS_NAMES",
    "make_process",
]


def _check_rate(rate: float) -> float:
    rate = float(rate)
    if rate < 0.0 or not np.isfinite(rate):
        raise ValueError(f"rate must be finite and >= 0, got {rate}")
    return rate


@dataclass(frozen=True)
class ArrivalProcess:
    """Base: per-slot Poisson draws around a (possibly varying) rate."""

    rate: float = 1.0  # mean arrivals per slot

    def __post_init__(self) -> None:
        _check_rate(self.rate)

    def rates(self, horizon: int) -> np.ndarray:
        """Expected arrivals per slot, shape ``(horizon,)``."""
        return np.full(horizon, self.rate, dtype=float)

    def phase_labels(self, horizon: int) -> list[str]:
        """Deterministic per-slot phase labels (overridden by MMPP)."""
        return ["steady"] * horizon

    def sample(
        self, horizon: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, list[str]]:
        """Draw ``(counts, phases)`` for ``horizon`` slots."""
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        rates = self.rates(horizon)
        counts = rng.poisson(rates).astype(np.int64)
        return counts, self.phase_labels(horizon)


@dataclass(frozen=True)
class PoissonProcess(ArrivalProcess):
    """Constant-rate memoryless arrivals (phase ``steady``)."""


@dataclass(frozen=True)
class MMPPProcess(ArrivalProcess):
    """2-state Markov-modulated Poisson process (phases ``calm``/``burst``).

    The chain starts calm; each slot it enters a burst with probability
    ``burst_prob`` and leaves one with probability ``calm_prob``
    (geometric sojourn lengths, mean ``1/calm_prob`` slots).  Burst slots
    arrive at ``burst_factor × rate``.  The *offered* mean rate therefore
    exceeds ``rate`` by the burst occupancy — the load curves report
    realized arrivals, so the distinction stays visible instead of being
    normalized away.
    """

    burst_factor: float = 6.0
    burst_prob: float = 0.08
    calm_prob: float = 0.35

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_factor < 1.0:
            raise ValueError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        for name in ("burst_prob", "calm_prob"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {p}")

    def sample(
        self, horizon: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, list[str]]:
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        counts = np.zeros(horizon, dtype=np.int64)
        phases: list[str] = []
        burst = False
        for k in range(horizon):
            # Draw order is fixed (transition, then count) — the stream
            # digest the tests pin depends on it.
            if burst:
                burst = not (rng.random() < self.calm_prob)
            else:
                burst = rng.random() < self.burst_prob
            lam = self.rate * (self.burst_factor if burst else 1.0)
            counts[k] = rng.poisson(lam)
            phases.append("burst" if burst else "calm")
        return counts, phases


@dataclass(frozen=True)
class DiurnalProcess(ArrivalProcess):
    """Sinusoidal day/night envelope (phases ``peak``/``offpeak``).

    ``rate(k) = rate × (1 + amplitude · sin(2πk/period))``, clipped at 0.
    Slots whose envelope sits at or above the mean are labelled ``peak``.
    """

    period_slots: int = 24
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period_slots < 2:
            raise ValueError(
                f"period_slots must be >= 2, got {self.period_slots}"
            )
        if not (0.0 <= self.amplitude <= 1.0):
            raise ValueError(
                f"amplitude must be in [0, 1], got {self.amplitude}"
            )

    def rates(self, horizon: int) -> np.ndarray:
        k = np.arange(horizon, dtype=float)
        envelope = 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * k / self.period_slots
        )
        return np.maximum(self.rate * envelope, 0.0)

    def phase_labels(self, horizon: int) -> list[str]:
        rates = self.rates(horizon)
        return ["peak" if r >= self.rate else "offpeak" for r in rates]


PROCESS_NAMES = ("poisson", "mmpp", "diurnal")


def make_process(
    name: str,
    rate: float,
    *,
    burst_factor: float = 6.0,
    burst_prob: float = 0.08,
    calm_prob: float = 0.35,
    period_slots: int = 24,
    amplitude: float = 0.8,
) -> ArrivalProcess:
    """Build the named arrival process with the model's knobs."""
    if name == "poisson":
        return PoissonProcess(rate=rate)
    if name == "mmpp":
        return MMPPProcess(
            rate=rate,
            burst_factor=burst_factor,
            burst_prob=burst_prob,
            calm_prob=calm_prob,
        )
    if name == "diurnal":
        return DiurnalProcess(
            rate=rate, period_slots=period_slots, amplitude=amplitude
        )
    raise ValueError(
        f"unknown arrival process {name!r}; known: {', '.join(PROCESS_NAMES)}"
    )
