"""Command-line interface: run and inspect the paper's experiments.

Usage::

    repro-haste list
    repro-haste describe fig04
    repro-haste run fig04 --trials 5 --seed 0 --scale default
    repro-haste run fig16 --trace out.jsonl
    repro-haste run all --scale quick
    repro-haste profile fig04
    repro-haste demo
    repro-haste solvers
    repro-haste solve haste-offline:c=4 --scale quick --seed 7
    repro-haste solve online-haste:tau=2 --instance saved.npz --save-artifact out.npz
    repro-haste instance sample --scale quick --seed 7 --out saved.npz
    repro-haste instance inspect saved.npz
    repro-haste traffic --process mmpp --loads 0.5,1,2 --seed 7
    repro-haste traffic --baseline benchmarks/slo_baseline.json

Unknown experiment ids and malformed or unknown solver specs exit with
status 2 and a one-line message on stderr (no traceback).

(Equivalently ``python -m repro.cli …``.)  Experiment output is the text
table the paper's figure plots plus the machine-checked shape claims; exit
status is non-zero if any shape check fails, so the CLI doubles as a
reproduction gate in CI.

Observability: ``run … --trace out.jsonl`` records the run's telemetry
(spans, events, and the final metric summary — see :mod:`repro.obs`) as
one JSON object per line; ``profile <exp>`` runs an experiment under an
in-memory registry and prints the nested span-tree summary.  The
``REPRO_TRACE`` environment variable enables the same machinery for any
entry point.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from . import obs
from .experiments import all_experiments, get_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-haste",
        description=(
            "HASTE reproduction: charging task scheduling for directional "
            "wireless charger networks (ICPP'18 / TMC'21)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all reproducible experiments")

    p_desc = sub.add_parser("describe", help="show one experiment's paper claim")
    p_desc.add_argument("experiment", help="experiment id, e.g. fig04")

    p_run = sub.add_parser("run", help="run one experiment (or 'all')")
    p_run.add_argument("experiment", help="experiment id, e.g. fig04, or 'all'")
    p_run.add_argument("--trials", type=int, default=3, help="topologies per point")
    p_run.add_argument("--seed", type=int, default=0, help="root random seed")
    p_run.add_argument(
        "--scale",
        choices=("quick", "default", "paper"),
        default="default",
        help="instance size tier",
    )
    p_run.add_argument(
        "--processes", type=int, default=1, help="worker processes for sweeps"
    )
    p_run.add_argument("--out", default=None, help="also append output to this file")
    p_run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write JSONL run telemetry (spans, events, metric summary) here",
    )

    p_prof = sub.add_parser(
        "profile",
        help="run one experiment under the tracer and print the span tree",
    )
    p_prof.add_argument("experiment", help="experiment id, e.g. fig04")
    p_prof.add_argument("--trials", type=int, default=1, help="topologies per point")
    p_prof.add_argument("--seed", type=int, default=0, help="root random seed")
    p_prof.add_argument(
        "--scale",
        choices=("quick", "default", "paper"),
        default="quick",
        help="instance size tier (default: quick — profiling wants cycles, "
        "not statistics)",
    )
    p_prof.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="also write the JSONL telemetry to this file",
    )

    sub.add_parser("demo", help="run a 30-second end-to-end demonstration")

    sub.add_parser("solvers", help="list registered solver specs and capabilities")

    p_solve = sub.add_parser(
        "solve",
        help="run one solver spec on a sampled or saved instance",
    )
    p_solve.add_argument(
        "spec", help="solver spec, e.g. haste-offline:c=4 or greedy-utility"
    )
    p_solve.add_argument(
        "--instance",
        default=None,
        metavar="PATH",
        help="solve a saved instance (.json/.npz) instead of sampling one",
    )
    p_solve.add_argument(
        "--scale",
        choices=("quick", "small", "default", "paper"),
        default="quick",
        help="instance size tier when sampling (ignored with --instance)",
    )
    p_solve.add_argument(
        "--seed",
        type=int,
        default=None,
        help="sampling/solver seed (default: 0 when sampling; the saved "
        "instance's own seed with --instance, reproducing the original run)",
    )
    p_solve.add_argument(
        "--save-artifact",
        default=None,
        metavar="PATH",
        help="save the structured RunArtifact (.json/.npz) here",
    )
    p_solve.add_argument(
        "--save-instance",
        default=None,
        metavar="PATH",
        help="save the (sampled or loaded) instance (.json/.npz) here",
    )

    p_inst = sub.add_parser("instance", help="sample or inspect problem instances")
    inst_sub = p_inst.add_subparsers(dest="instance_command", required=True)
    p_sample = inst_sub.add_parser(
        "sample", help="sample an instance and save it for later replay"
    )
    p_sample.add_argument(
        "--scale",
        choices=("quick", "small", "default", "paper"),
        default="quick",
        help="instance size tier",
    )
    p_sample.add_argument("--seed", type=int, default=0, help="sampling seed")
    p_sample.add_argument(
        "--out", required=True, metavar="PATH", help="output path (.json or .npz)"
    )
    p_inspect = inst_sub.add_parser("inspect", help="describe a saved instance")
    p_inspect.add_argument("path", help="instance file (.json or .npz)")

    p_traffic = sub.add_parser(
        "traffic",
        help="drive an online solver with a seeded traffic stream and "
        "report SLO telemetry",
    )
    p_traffic.add_argument(
        "--spec",
        default="online-haste",
        help="online solver spec to drive (default: online-haste; "
        "shards=/loss=… specs work unchanged)",
    )
    p_traffic.add_argument(
        "--process",
        choices=("poisson", "mmpp", "diurnal"),
        default="poisson",
        help="arrival process shape",
    )
    p_traffic.add_argument(
        "--rate", type=float, default=2.0, help="mean arrivals per slot at load 1"
    )
    p_traffic.add_argument(
        "--loads",
        default="0.5,1.0,2.0",
        help="comma-separated load multipliers to sweep",
    )
    p_traffic.add_argument(
        "--horizon", type=int, default=None, help="stream length in slots"
    )
    p_traffic.add_argument(
        "--fleet-scale",
        type=float,
        default=1.0,
        help="charger-fleet scale factor (field grows to keep density)",
    )
    p_traffic.add_argument(
        "--hotspot",
        type=float,
        default=0.0,
        help="fraction of arrivals clustered in a seeded hot-spot disc",
    )
    p_traffic.add_argument("--seed", type=int, default=0, help="stream seed")
    p_traffic.add_argument(
        "--scale",
        choices=("quick", "small", "default", "paper"),
        default="quick",
        help="base scenario size tier",
    )
    p_traffic.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable obs capture (latency falls back to plan-time/events)",
    )
    p_traffic.add_argument(
        "--save-report",
        default=None,
        metavar="PATH",
        help="write the TrafficReport JSON here",
    )
    p_traffic.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="evaluate the SLO gate against this baseline (exit 1 on fail)",
    )
    p_traffic.add_argument(
        "--update-baseline",
        default=None,
        metavar="PATH",
        help="record this run as the baseline entry for the current "
        "kernel mode",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the scheduling daemon: HTTP/JSON over the solver registry",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="listen address"
    )
    p_serve.add_argument(
        "--port", type=int, default=8642, help="listen port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="solver worker threads"
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="bounded request queue size (overflow answers 503)",
    )
    p_serve.add_argument(
        "--result-cache",
        type=int,
        default=256,
        help="result-cache capacity (content_hash × spec × seed entries)",
    )
    p_serve.add_argument(
        "--spec",
        default="haste-offline",
        help="default solver spec for requests that omit one",
    )
    p_serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help="do not enable the obs registry for the daemon",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline (requests may override; "
        "unset = no deadline)",
    )
    p_serve.add_argument(
        "--drain-deadline",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT, wait this long for in-flight requests "
        "before exiting",
    )
    p_serve.add_argument(
        "--no-degrade",
        action="store_true",
        help="disable the graceful-degradation ladder (trips become errors)",
    )
    p_serve.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject process faults, e.g. 'crash=0.1,slow=0.2,seed=7' "
        "(keys: crash, slow, slow_s, stall, stall_s, seed)",
    )

    p_bounds = sub.add_parser(
        "bounds", help="print the applicable theoretical guarantees"
    )
    p_bounds.add_argument("--rho", type=float, default=1 / 12,
                          help="switching delay fraction (paper: 1/12)")
    p_bounds.add_argument("--colors", type=int, default=4,
                          help="TabularGreedy color count C")

    return parser


def _cmd_list() -> int:
    for exp in all_experiments():
        print(f"{exp.id:22s} {exp.figure:12s} {exp.title}")
    return 0


def _cmd_describe(experiment_id: str) -> int:
    exp = get_experiment(experiment_id)
    print(f"{exp.id} ({exp.figure}): {exp.title}")
    print(f"paper claim: {exp.paper_claim}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = (
        all_experiments()
        if args.experiment == "all"
        else [get_experiment(args.experiment)]
    )
    if args.trace:
        obs.configure(trace=args.trace)
    any_failed = False
    try:
        for exp in targets:
            start = time.time()
            output = exp.run(
                trials=args.trials,
                seed=args.seed,
                scale=args.scale,
                processes=args.processes,
            )
            rendered = output.render()
            rendered += f"\n(elapsed {time.time() - start:.1f}s)\n"
            print(rendered)
            if args.out:
                # Append per experiment so long runs leave a usable record
                # even if interrupted.
                with open(args.out, "a", encoding="utf-8") as fh:
                    fh.write(rendered + "\n")
            if not output.all_passed:
                any_failed = True
    finally:
        if args.trace:
            obs.shutdown()
            print(f"(trace written to {args.trace})")
    return 1 if any_failed else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    exp = get_experiment(args.experiment)
    reg = obs.configure(trace=args.trace)
    try:
        start = time.time()
        output = exp.run(
            trials=args.trials, seed=args.seed, scale=args.scale, processes=1
        )
        elapsed = time.time() - start
        print(output.render())
        print(f"(elapsed {elapsed:.1f}s)\n")
        print(obs.format_summary(reg))
    finally:
        obs.shutdown()
        if args.trace:
            print(f"\n(trace written to {args.trace})")
    return 0 if output.all_passed else 1


def _cmd_demo() -> int:
    from .offline import schedule_offline
    from .online import run_online_haste
    from .sim import SimulationConfig, execute_schedule, sample_network

    cfg = SimulationConfig.quick()
    net = sample_network(cfg, np.random.default_rng(7))
    print(net.describe())

    offline = schedule_offline(net, 4, rng=np.random.default_rng(1))
    ex = execute_schedule(net, offline.schedule, rho=cfg.rho)
    print(f"centralized offline  : {ex.summary()}")

    online = run_online_haste(
        net, num_colors=4, tau=cfg.tau, rho=cfg.rho, rng=np.random.default_rng(2)
    )
    print(f"distributed online   : {online.summary()}")
    return 0


def _cli_config(scale: str):
    """Resolve a CLI --scale tier to a :class:`SimulationConfig`."""
    if scale == "small":
        from .sim.config import SimulationConfig

        return SimulationConfig.small_scale()
    from .experiments.common import config_for_scale

    return config_for_scale(scale)


def _cmd_solvers() -> int:
    from .solvers import REGISTRY

    for name in REGISTRY.names():
        entry = REGISTRY.entry(name)
        print(f"{name:22s} {entry.capabilities.summary()}")
        if entry.defaults:
            params = ", ".join(
                f"{k}={'<auto>' if v is None else v}"
                for k, v in sorted(entry.defaults.items())
            )
            print(f"{'':22s}   params: {params}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from .solvers import Instance, get_solver, solve_instance

    solver = get_solver(args.spec)  # validate spec before touching files
    if args.instance:
        instance = Instance.load(args.instance)
        seed = args.seed  # None → replay with the instance's own seed
    else:
        instance = Instance.sample(
            _cli_config(args.scale), args.seed if args.seed is not None else 0
        )
        seed = None
    if args.save_instance:
        instance.save(args.save_instance)
    print(instance.describe())
    artifact = solve_instance(solver.canonical(), instance, seed=seed)
    print(artifact.summary())
    if args.save_instance:
        print(f"(instance written to {args.save_instance})")
    if args.save_artifact:
        artifact.save(args.save_artifact)
        print(f"(artifact written to {args.save_artifact})")
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    from .solvers import get_solver
    from .traffic import (
        TrafficModel,
        evaluate_slo,
        load_baseline,
        run_calibration,
        run_traffic,
        save_baseline,
        update_baseline,
    )

    get_solver(args.spec)  # validate the spec before any work (exit 2)
    try:
        loads = tuple(float(x) for x in args.loads.split(",") if x.strip())
    except ValueError:
        print(f"error: bad --loads value {args.loads!r}", file=sys.stderr)
        return 2
    if not loads:
        print("error: --loads is empty", file=sys.stderr)
        return 2
    model = TrafficModel(
        process=args.process,
        rate=args.rate,
        horizon_slots=args.horizon,
        fleet_scale=args.fleet_scale,
        hotspot_frac=args.hotspot,
        seed=args.seed,
    )
    report = run_traffic(
        model,
        _cli_config(args.scale),
        spec=args.spec,
        loads=loads,
        telemetry=not args.no_telemetry,
    )
    print(report.summary())
    if args.save_report:
        report.save(args.save_report)
        print(f"(report written to {args.save_report})")
    if args.update_baseline:
        try:
            baseline = load_baseline(args.update_baseline)
        except FileNotFoundError:
            baseline = None
        baseline = update_baseline(baseline, report, run_calibration())
        save_baseline(baseline, args.update_baseline)
        print(
            f"(baseline entry [{report.kernel}] written to "
            f"{args.update_baseline})"
        )
    if args.baseline:
        result = evaluate_slo(report, load_baseline(args.baseline))
        print(result.summary())
        if not result.passed:
            return 1
    return 0


def _cmd_instance(args: argparse.Namespace) -> int:
    from .solvers import Instance

    if args.instance_command == "sample":
        instance = Instance.sample(_cli_config(args.scale), args.seed)
        instance.save(args.out)
        print(instance.describe())
        print(f"content hash: {instance.content_hash()}")
        print(f"(instance written to {args.out})")
        return 0
    instance = Instance.load(args.path)
    print(instance.describe())
    print(f"content hash: {instance.content_hash()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from . import obs
    from .faults import parse_process_faults
    from .serve import ScheduleEngine, ServeDaemon
    from .solvers import get_solver

    if not (0 <= args.port <= 65535):
        print(
            f"error: --port must be in [0, 65535], got {args.port}",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1 or args.queue_limit < 1:
        print(
            "error: --workers and --queue-limit must be >= 1", file=sys.stderr
        )
        return 2
    if args.deadline is not None and not (args.deadline > 0):
        print("error: --deadline must be > 0", file=sys.stderr)
        return 2
    fault_model = None
    if args.chaos:
        try:
            fault_model = parse_process_faults(args.chaos)
        except ValueError as err:
            print(f"error: --chaos: {err}", file=sys.stderr)
            return 2
    get_solver(args.spec)  # bad default spec → SolverError → exit 2 in main()

    owns_obs = not args.no_telemetry and not obs.enabled()
    if owns_obs:
        obs.configure()
    engine = ScheduleEngine(
        workers=args.workers,
        queue_limit=args.queue_limit,
        result_cache_capacity=args.result_cache,
        default_deadline_s=args.deadline,
        degradation=not args.no_degrade,
        fault_model=fault_model,
    )
    daemon = ServeDaemon(
        engine, host=args.host, port=args.port, default_spec=args.spec
    )

    async def _run() -> None:
        await daemon.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop: Ctrl-C falls back to KeyboardInterrupt
        print(
            f"repro-haste serve: listening on http://{daemon.host}:"
            f"{daemon.port} (default spec {args.spec!r})",
            flush=True,
        )
        serve_task = asyncio.ensure_future(daemon.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        done, _ = await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if stop_task in done:
            # Graceful drain: refuse new work, let in-flight finish, then
            # tear down — the SIGTERM contract the chaos suite pins.
            print(
                "repro-haste serve: draining "
                f"(up to {args.drain_deadline:g}s) ...",
                flush=True,
            )
            daemon.begin_drain()
            drained = await asyncio.to_thread(
                engine.drain, args.drain_deadline
            )
            await daemon.stop()
            serve_task.cancel()
            try:
                await serve_task
            except asyncio.CancelledError:
                pass
            print(
                "repro-haste serve: drained, shutting down"
                if drained
                else "repro-haste serve: drain deadline hit, shutting down",
                flush=True,
            )
        else:
            stop_task.cancel()
            await serve_task  # propagate listener failures

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    except OSError as err:
        print(
            f"error: cannot bind {args.host}:{args.port}: {err}",
            file=sys.stderr,
        )
        return 2
    finally:
        engine.close()
        if owns_obs:
            obs.shutdown()
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "describe":
        return _cmd_describe(args.experiment)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "solvers":
        return _cmd_solvers()
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "instance":
        return _cmd_instance(args)
    if args.command == "traffic":
        return _cmd_traffic(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "bounds":
        from .analysis import certificate

        print(certificate(args.rho, args.colors).render())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: list[str] | None = None) -> int:
    """Entry point (console script ``repro-haste``).

    Bad ids — an unknown experiment, a malformed or unknown solver spec, a
    missing instance file — exit with status 2 and a one-line message on
    stderr instead of a traceback.
    """
    from .solvers import SolverError, SpecError

    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except (SpecError, SolverError, FileNotFoundError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except KeyError as err:
        # get_experiment signals unknown ids with a descriptive KeyError.
        print(f"error: {err.args[0] if err.args else err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
