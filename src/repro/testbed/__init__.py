"""Testbed emulation: Powercast hardware constants and the two topologies."""

from .experiment import TestbedReport, run_testbed
from .powercast import SENSOR_NODE, TX91501, TestbedHardware
from .topologies import build_testbed_network, topology_one, topology_two

__all__ = [
    "SENSOR_NODE",
    "TX91501",
    "TestbedHardware",
    "TestbedReport",
    "build_testbed_network",
    "run_testbed",
    "topology_one",
    "topology_two",
]
