"""Field-experiment emulation: per-task utilities on the testbeds.

Figures 21/22 (topology 1) and 24/25 (topology 2) of the paper plot, for
each charging task, the utility achieved by HASTE (C = 4), GreedyUtility,
and GreedyCover — once for the centralized offline setting and once for
the distributed online setting.  :func:`run_testbed` reproduces exactly
that data as a :class:`TestbedReport`, with the paper's "on average / at
most" improvement figures computed the same way (averaging per-task
utilities, reporting the worst-case per-task gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.network import ChargerNetwork
from ..offline.baselines import greedy_cover_schedule, greedy_utility_schedule
from ..offline.centralized import schedule_offline
from ..offline.smoothing import smooth_switches
from ..online.runtime import run_online_baseline, run_online_haste
from ..sim.engine import execute_schedule
from .powercast import TX91501

__all__ = ["TestbedReport", "run_testbed"]


@dataclass
class TestbedReport:
    """Per-task utilities for the three algorithms in one setting."""

    # Not a pytest test class despite the Test* name.
    __test__ = False

    setting: str  # "offline" or "online"
    task_utilities: dict[str, np.ndarray] = field(repr=False)
    total_utility: dict[str, float] = field(default_factory=dict)

    ALGORITHMS = ("HASTE", "GreedyUtility", "GreedyCover")

    def improvement_over(self, baseline: str, *, floor: float = 0.05) -> tuple[float, float]:
        """(average %, max %) improvement of HASTE over a baseline.

        Computed on per-task utilities, mirroring the paper's per-task
        reading of Figs. 21–25; the baseline is floored at ``floor`` so a
        starved baseline task cannot blow the percentage up to infinity.
        """
        ours = self.task_utilities["HASTE"]
        theirs = self.task_utilities[baseline]
        imp = 100.0 * (ours - theirs) / np.maximum(theirs, floor)
        return float(imp.mean()), float(imp.max())

    def total_improvement_over(self, baseline: str) -> float:
        """Percent improvement in *overall* charging utility."""
        ours = self.total_utility["HASTE"]
        theirs = self.total_utility[baseline]
        if theirs <= 0:
            return 0.0
        return 100.0 * (ours - theirs) / theirs

    def render(self) -> str:
        """Text table: rows = tasks, columns = algorithms (a Fig. 21-alike)."""
        m = len(next(iter(self.task_utilities.values())))
        header = ["task"] + list(self.ALGORITHMS)
        rows = [header]
        for j in range(m):
            rows.append(
                [str(j + 1)]
                + [f"{self.task_utilities[a][j]:.3f}" for a in self.ALGORITHMS]
            )
        rows.append(
            ["TOTAL"] + [f"{self.total_utility[a]:.4f}" for a in self.ALGORITHMS]
        )
        widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
        lines = ["  ".join(c.rjust(w) for c, w in zip(r, widths)) for r in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)


def run_testbed(
    network: ChargerNetwork,
    setting: str = "offline",
    *,
    num_colors: int = 4,
    seed: int = 0,
) -> TestbedReport:
    """Run the three algorithms on a testbed network in one setting.

    ``setting="offline"`` uses the centralized Algorithm 2 and the offline
    baselines; ``setting="online"`` uses HASTE-DO and the τ-delayed
    baselines.  Switching delay ρ and rescheduling delay τ come from the
    TX91501 hardware record.
    """
    if setting not in ("offline", "online"):
        raise ValueError(f"setting must be 'offline' or 'online', got {setting!r}")
    rho, tau = TX91501.rho, TX91501.tau
    rng = np.random.default_rng(seed)

    task_utilities: dict[str, np.ndarray] = {}
    totals: dict[str, float] = {}

    if setting == "offline":
        haste = schedule_offline(network, num_colors, rng=rng)
        runs = {
            "HASTE": smooth_switches(network, haste.schedule, rho=rho),
            "GreedyUtility": greedy_utility_schedule(network),
            "GreedyCover": greedy_cover_schedule(network),
        }
        for name, sched in runs.items():
            ex = execute_schedule(network, sched, rho=rho)
            task_utilities[name] = ex.task_utilities
            totals[name] = ex.total_utility
    else:
        haste = run_online_haste(
            network, num_colors=num_colors, tau=tau, rho=rho, rng=rng
        )
        task_utilities["HASTE"] = haste.execution.task_utilities
        totals["HASTE"] = haste.total_utility
        for name, kind in (("GreedyUtility", "utility"), ("GreedyCover", "cover")):
            run = run_online_baseline(network, kind, tau=tau, rho=rho)
            task_utilities[name] = run.execution.task_utilities
            totals[name] = run.total_utility

    return TestbedReport(
        setting=setting, task_utilities=task_utilities, total_utility=totals
    )
