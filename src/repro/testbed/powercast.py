"""Powercast TX91501 testbed parameters (paper §8).

The paper's field experiments use off-the-shelf TX91501 915 MHz power
transmitters and P2110-based rechargeable sensor nodes.  The authors fit
the directional power model to their hardware and report the constants we
embed here:

* ``α = 41.93``, ``β = 0.6428`` (empirical power-law fit),
* charger range ``D = 4 m``, charging angle ``A_s = 60°``,
* sensor receiving angle ``A_o = 120°``,
* ``T_s = 1 min``, ``ρ = 1/12``, ``τ = 1``,
* required charging energy per task in ``[3 J, 5 J]`` (RF harvesting at
  these distances delivers milliwatts, hence joule-scale tasks).

Because we have no physical transmitters, the *hardware* is replaced by the
model the authors themselves validated against it — see DESIGN.md
("Hardware substitution") for the argument that this preserves who-wins
comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.power import PowerModel

__all__ = ["TX91501", "SENSOR_NODE", "TestbedHardware"]


@dataclass(frozen=True)
class TestbedHardware:
    """Fitted hardware constants for one transmitter/receiver family."""

    alpha: float
    beta: float
    radius: float
    charging_angle: float
    receiving_angle: float
    slot_seconds: float
    rho: float
    tau: int
    energy_min: float
    energy_max: float

    def power_model(self) -> PowerModel:
        """The α/(d+β)² law with this hardware's constants."""
        return PowerModel(alpha=self.alpha, beta=self.beta)

    def peak_power(self) -> float:
        """Received power at zero distance (sanity ceiling), watts."""
        return self.alpha / self.beta**2


#: The paper's transmitter-side parameters.  The fitted ``α = 41.93`` is in
#: *milliwatts* (RF harvesting at metre range delivers mW — 3 W EIRP
#: transmitter, P2110 harvester); the engine accounts energy in joules =
#: watts × seconds, so the constant is converted to watts here.  The
#: joule-scale required energies ([3, 5] J) only make sense against
#: mW-scale harvest, which is the internal consistency check.
TX91501 = TestbedHardware(
    alpha=41.93e-3,
    beta=0.6428,
    radius=4.0,
    charging_angle=np.pi / 3,
    receiving_angle=2 * np.pi / 3,
    slot_seconds=60.0,
    rho=1.0 / 12.0,
    tau=1,
    energy_min=3.0,
    energy_max=5.0,
)

#: Alias emphasizing the receiver-side constants live on the same record.
SENSOR_NODE = TX91501
