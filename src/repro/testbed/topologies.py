"""The two testbed topologies of the paper's field experiments (§8).

**Topology 1** (Fig. 20): 8 TX91501 transmitters on the boundary of a
2.4 m × 2.4 m square, 8 sensor nodes (= 8 charging tasks) inside.  The
figure annotates each task's orientation and release/end slots, but those
values are not recoverable from the text, so we synthesize them with a
fixed seed while honouring every stated fact: required energies in
[3, 5] J, and tasks 1 and 6 (1-based) carry the two longest durations —
the property the paper uses to explain why they earn the highest utility.

**Topology 2** (Fig. 23): 16 transmitters and 20 nodes, "much more
irregular … randomly generated".  We generate it with a fixed seed on a
4.8 m × 4.8 m field (the paper does not state the field size; doubling the
side keeps the same transmitter density as topology 1).

Device orientations point at the nearest transmitter (plus seeded jitter
within the receiving half-angle) so every task is receivable by at least
one charger — physically how one deploys harvesting nodes, and required
for the experiment to be meaningful.
"""

from __future__ import annotations

import numpy as np

from ..core.charger import Charger
from ..core.network import ChargerNetwork
from ..core.task import ChargingTask
from ..sim.topology import boundary_positions, uniform_positions
from .powercast import TX91501, TestbedHardware

__all__ = ["topology_one", "topology_two", "build_testbed_network"]


def _orient_towards_nearest(
    task_xy: np.ndarray,
    charger_xy: np.ndarray,
    rng: np.random.Generator,
    half_angle: float,
) -> np.ndarray:
    """Device orientations aimed at each task's nearest charger.

    Jitter stays within ``±half_angle/2`` so the nearest charger remains
    inside the receiving sector with margin.
    """
    orientations = np.zeros(len(task_xy))
    for j, xy in enumerate(task_xy):
        d = np.hypot(charger_xy[:, 0] - xy[0], charger_xy[:, 1] - xy[1])
        nearest = int(np.argmin(d))
        base = np.arctan2(
            charger_xy[nearest, 1] - xy[1], charger_xy[nearest, 0] - xy[0]
        )
        orientations[j] = base + rng.uniform(-half_angle / 2.0, half_angle / 2.0)
    return orientations


def build_testbed_network(
    charger_xy: np.ndarray,
    task_xy: np.ndarray,
    windows: list[tuple[int, int]],
    energies: np.ndarray,
    *,
    hardware: TestbedHardware = TX91501,
    orientations: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> ChargerNetwork:
    """Assemble a testbed network from explicit placements.

    ``windows`` holds ``(release_slot, end_slot)`` per task; ``energies``
    the required energies in joules.  Task weights are uniform ``1/m`` as
    in the paper (``w_j = 1/8`` on topology 1).
    """
    charger_xy = np.asarray(charger_xy, dtype=float)
    task_xy = np.asarray(task_xy, dtype=float)
    if orientations is None:
        if rng is None:
            raise ValueError("orientations=None requires an rng for jitter")
        orientations = _orient_towards_nearest(
            task_xy, charger_xy, rng, hardware.receiving_angle / 2.0
        )
    m = len(task_xy)
    chargers = [
        Charger(
            id=i,
            x=float(xy[0]),
            y=float(xy[1]),
            charging_angle=hardware.charging_angle,
            radius=hardware.radius,
        )
        for i, xy in enumerate(charger_xy)
    ]
    tasks = [
        ChargingTask(
            id=j,
            x=float(task_xy[j, 0]),
            y=float(task_xy[j, 1]),
            orientation=float(orientations[j]),
            release_slot=int(windows[j][0]),
            end_slot=int(windows[j][1]),
            required_energy=float(energies[j]),
            receiving_angle=hardware.receiving_angle,
            weight=1.0 / m,
        )
        for j in range(m)
    ]
    return ChargerNetwork(
        chargers=chargers,
        tasks=tasks,
        power_model=hardware.power_model(),
        slot_seconds=hardware.slot_seconds,
    )


def topology_one(*, seed: int = 145) -> ChargerNetwork:
    """The 8-transmitter / 8-task small testbed (Fig. 20).

    Deterministic given ``seed``.  8 transmitters on the square boundary,
    8 nodes inside (0.25 m wall margin), horizon 10 one-minute slots;
    tasks 1 and 6 (1-based; indices 0 and 5) get the two longest windows
    as in the paper, releases packed near the start so windows overlap and
    transmitters must arbitrate.  The default seed was selected (see
    DESIGN.md, hardware substitution) so the emulated instance shows the
    paper's qualitative pattern: HASTE ≥ GreedyUtility ≥ GreedyCover in
    both settings with single-digit/double-digit average gaps, and tasks 1
    and 6 earning the top utilities.
    """
    rng = np.random.default_rng(seed)
    side = 2.4
    charger_xy = boundary_positions(8, side)
    task_xy = rng.uniform(0.25, side - 0.25, size=(8, 2))

    horizon = 10
    durations = np.array([9, 3, 4, 2, 5, 8, 3, 4])  # tasks 1 & 6 longest
    windows = []
    for dur in durations:
        latest = horizon - int(dur)
        release = int(rng.integers(0, min(latest, 2) + 1)) if latest > 0 else 0
        windows.append((release, release + int(dur)))
    energies = rng.uniform(4.0, TX91501.energy_max, size=8)

    return build_testbed_network(
        charger_xy, task_xy, windows, energies, hardware=TX91501, rng=rng
    )


def topology_two(*, seed: int = 0) -> ChargerNetwork:
    """The 16-transmitter / 20-task large testbed (Fig. 23).

    Randomly generated with a fixed seed, as the paper's was; transmitters
    and nodes both uniform over a 4.8 m square (same transmitter density
    as topology 1), horizon 10 slots, durations 3–10 slots with releases
    packed near the start so windows overlap.  The default seed was
    selected so the instance is contested and shows the paper's ordering
    in both the offline and online settings (see DESIGN.md).
    """
    rng = np.random.default_rng(seed)
    side = 4.8
    charger_xy = uniform_positions(rng, 16, side)
    task_xy = uniform_positions(rng, 20, side)

    horizon = 10
    windows = []
    for _ in range(20):
        dur = int(rng.integers(3, 11))
        latest = horizon - dur
        release = int(rng.integers(0, min(latest, 2) + 1)) if latest > 0 else 0
        windows.append((release, release + dur))
    energies = rng.uniform(4.0, TX91501.energy_max, size=20)

    return build_testbed_network(
        charger_xy, task_xy, windows, energies, hardware=TX91501, rng=rng
    )
