"""repro.faults — seeded, replayable fault injection for the negotiation.

The lossless :class:`~repro.online.messaging.MessageBus` is the paper's
idealized radio; this package is everything it refuses to model: per-link
message loss, duplication and delay, charger crash/recover windows, and
the staleness timeouts the degraded protocol needs to stay live.  See
:class:`FaultModel` for the value object, :class:`LossyMessageBus` for
the transport, and :func:`repro.online.distributed.negotiate_window` for
the degradation-hardened protocol variant the injector activates.
"""

from .bus import FaultStats, LossyMessageBus
from .model import (
    CrashWindow,
    FaultInjector,
    FaultModel,
    FaultTrace,
    LinkOutcome,
    ReplayDivergence,
    ReplayInjector,
)

__all__ = [
    "CrashWindow",
    "FaultInjector",
    "FaultModel",
    "FaultStats",
    "FaultTrace",
    "LinkOutcome",
    "LossyMessageBus",
    "ReplayDivergence",
    "ReplayInjector",
]
