"""repro.faults — seeded, replayable fault injection for the negotiation.

The lossless :class:`~repro.online.messaging.MessageBus` is the paper's
idealized radio; this package is everything it refuses to model: per-link
message loss, duplication and delay, charger crash/recover windows, and
the staleness timeouts the degraded protocol needs to stay live.  See
:class:`FaultModel` for the value object, :class:`LossyMessageBus` for
the transport, and :func:`repro.online.distributed.negotiate_window` for
the degradation-hardened protocol variant the injector activates.

:mod:`repro.faults.process` lifts the same seeded/replayable contract to
the *serving* layer: :class:`ProcessFaultModel` describes what a daemon
worker may do wrong (crash, slow down, stall) and drives the
:class:`~repro.serve.engine.ScheduleEngine` chaos suite.
"""

from .bus import FaultStats, LossyMessageBus
from .model import (
    CrashWindow,
    FaultInjector,
    FaultModel,
    FaultTrace,
    LinkOutcome,
    ReplayDivergence,
    ReplayInjector,
)
from .process import (
    InjectedWorkerCrash,
    ProcessFault,
    ProcessFaultInjector,
    ProcessFaultModel,
    ReplayProcessInjector,
    parse_process_faults,
)

__all__ = [
    "CrashWindow",
    "FaultInjector",
    "FaultModel",
    "FaultStats",
    "FaultTrace",
    "InjectedWorkerCrash",
    "LinkOutcome",
    "LossyMessageBus",
    "ProcessFault",
    "ProcessFaultInjector",
    "ProcessFaultModel",
    "ReplayDivergence",
    "ReplayInjector",
    "ReplayProcessInjector",
    "parse_process_faults",
]
