"""Process-level fault model: seeded worker crashes, slowdowns, stalls.

PR 4's :class:`~repro.faults.model.FaultModel` injects *radio* faults
into the negotiation protocol; this module injects *process* faults into
the serving layer above it — the things a long-lived daemon actually
dies of: a worker thread killed by a pathological request, a solver that
suddenly runs 10× slow, a call that wedges outright.  The design follows
the same replayability contract as the link-level injector:

* all randomness comes from **one dedicated generator** seeded by
  ``ProcessFaultModel.seed`` and consumed in request order — never from
  a solver's rng, whose stream must stay byte-identical to the
  fault-free run;
* one ``uniform(0, 1)`` draw per decision, partitioned into
  crash / stall / slow / clean bands (so the three probabilities are
  exact and must sum to ≤ 1);
* every decision is recorded into a :class:`~repro.faults.model.
  FaultTrace` (sha256-digestible), and :class:`ReplayProcessInjector`
  re-serves a recorded trace positionally, verifying the query context
  and raising :class:`~repro.faults.model.ReplayDivergence` on drift —
  the same contract the chaos suite pins for the link injector.

The decisions themselves are *applied* by the
:class:`~repro.serve.engine.ScheduleEngine` worker: ``crash`` raises
:class:`InjectedWorkerCrash` (a ``BaseException`` — it escapes ordinary
``except Exception`` handling exactly like a genuinely dying worker
would escape a sloppy handler), ``slow``/``stall`` sleep cooperatively
(interruptible by the request deadline's degradation reserve).  A null
model injects nothing and the engine skips the injector entirely, which
is what keeps fault-free daemon behavior bit-identical.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from .model import FaultTrace, ReplayDivergence

__all__ = [
    "InjectedWorkerCrash",
    "ProcessFault",
    "ProcessFaultModel",
    "ProcessFaultInjector",
    "ReplayProcessInjector",
    "parse_process_faults",
]


class InjectedWorkerCrash(BaseException):
    """A simulated worker death.

    Deliberately a ``BaseException``: it must sail past the engine's
    ordinary ``except Exception`` error handling (which answers 500 and
    keeps the worker alive) and actually kill the worker thread, so the
    supervision/restart machinery is exercised for real.
    """


class ProcessFault(NamedTuple):
    """One injected decision for one request."""

    kind: str  # "none" | "crash" | "slow" | "stall"
    seconds: float  # sleep duration for slow/stall, 0 otherwise


def _check_prob(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class ProcessFaultModel:
    """Everything a serving worker may do wrong, as one frozen value.

    ``crash`` / ``stall`` / ``slow`` are per-request probabilities (their
    sum must be ≤ 1 — one uniform draw decides each request's fate).
    ``slow_s`` is the injected slowdown, ``stall_s`` the injected stall;
    both sleeps are cooperative, so a stall longer than the request
    deadline degrades instead of hanging.
    """

    crash: float = 0.0
    slow: float = 0.0
    slow_s: float = 0.05
    stall: float = 0.0
    stall_s: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_prob("crash", self.crash)
        _check_prob("slow", self.slow)
        _check_prob("stall", self.stall)
        total = self.crash + self.slow + self.stall
        if total > 1.0 + 1e-12:
            raise ValueError(
                f"crash + slow + stall must be <= 1, got {total:g}"
            )
        if self.slow_s < 0.0:
            raise ValueError(f"slow_s must be >= 0, got {self.slow_s}")
        if self.stall_s < 0.0:
            raise ValueError(f"stall_s must be >= 0, got {self.stall_s}")

    def is_null(self) -> bool:
        """True when this model injects nothing — the engine skips the
        injector entirely, keeping fault-free behavior bit-identical."""
        return self.crash == 0.0 and self.slow == 0.0 and self.stall == 0.0

    def as_dict(self) -> dict:
        return {
            "crash": self.crash,
            "slow": self.slow,
            "slow_s": self.slow_s,
            "stall": self.stall,
            "stall_s": self.stall_s,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProcessFaultModel":
        return cls(**dict(payload))

    def injector(self) -> "ProcessFaultInjector":
        return ProcessFaultInjector(self)


class ProcessFaultInjector:
    """Draws per-request fault decisions from one seeded stream.

    Decisions are consumed in request order under a lock (the same
    protocol-order contract as the link injector) — with one engine
    worker and sequential submission the stream is fully deterministic,
    which is what the chaos suite's replay pins rely on.
    """

    def __init__(self, model: ProcessFaultModel) -> None:
        self.model = model
        self._rng = np.random.default_rng(model.seed)
        self._lock = threading.Lock()
        self.trace = FaultTrace()
        self.decisions = 0
        self.crashes = 0
        self.slowdowns = 0
        self.stalls = 0

    def decide(self, spec: str, instance_hash: str) -> ProcessFault:
        """The fate of one request (recorded; thread-safe)."""
        m = self.model
        with self._lock:
            index = self.decisions
            self.decisions += 1
            u = float(self._rng.random())
            if u < m.crash:
                kind, seconds = "crash", 0.0
                self.crashes += 1
            elif u < m.crash + m.stall:
                kind, seconds = "stall", m.stall_s
                self.stalls += 1
            elif u < m.crash + m.stall + m.slow:
                kind, seconds = "slow", m.slow_s
                self.slowdowns += 1
            else:
                kind, seconds = "none", 0.0
            self.trace.record(
                ("proc", index, spec, instance_hash[:12], kind, seconds)
            )
        return ProcessFault(kind, seconds)

    def stats(self) -> dict:
        with self._lock:
            return {
                "decisions": self.decisions,
                "crashes": self.crashes,
                "slowdowns": self.slowdowns,
                "stalls": self.stalls,
                "trace_digest": self.trace.digest(),
            }


class ReplayProcessInjector:
    """Re-serves a recorded process-fault trace, verifying each query.

    Positional replay with context verification — the process-level twin
    of :class:`~repro.faults.model.ReplayInjector`.  A replayed request
    stream that diverges from the recording (different spec or instance
    at some position) raises :class:`ReplayDivergence` immediately.
    """

    def __init__(self, trace: FaultTrace) -> None:
        self._events = [ev for ev in trace.events if ev[0] == "proc"]
        self._cursor = 0
        self._lock = threading.Lock()
        self.trace = FaultTrace()
        self.decisions = 0
        self.crashes = 0
        self.slowdowns = 0
        self.stalls = 0

    def decide(self, spec: str, instance_hash: str) -> ProcessFault:
        with self._lock:
            if self._cursor >= len(self._events):
                raise ReplayDivergence(
                    f"process-fault replay exhausted after {self._cursor} "
                    f"events but the run queried decide({spec!r}, "
                    f"{instance_hash[:12]!r})"
                )
            _kind, index, rspec, rhash, kind, seconds = self._events[
                self._cursor
            ]
            if (rspec, rhash) != (spec, instance_hash[:12]):
                raise ReplayDivergence(
                    f"process-fault divergence at event {self._cursor}: "
                    f"recorded ({rspec!r}, {rhash!r}) but live query is "
                    f"({spec!r}, {instance_hash[:12]!r})"
                )
            self._cursor += 1
            self.decisions += 1
            if kind == "crash":
                self.crashes += 1
            elif kind == "stall":
                self.stalls += 1
            elif kind == "slow":
                self.slowdowns += 1
            self.trace.record(
                ("proc", index, spec, instance_hash[:12], kind, seconds)
            )
        return ProcessFault(kind, float(seconds))

    def exhausted(self) -> bool:
        return self._cursor == len(self._events)

    def stats(self) -> dict:
        with self._lock:
            return {
                "decisions": self.decisions,
                "crashes": self.crashes,
                "slowdowns": self.slowdowns,
                "stalls": self.stalls,
                "trace_digest": self.trace.digest(),
            }


def parse_process_faults(text: str) -> ProcessFaultModel:
    """Parse a ``crash=0.1,slow=0.2,slow_s=0.05,seed=7`` CLI string.

    Empty string → the null model.  Unknown keys and malformed values
    raise ``ValueError`` with a one-line message (the CLI maps it to
    exit 2).
    """
    fields = {
        "crash": float,
        "slow": float,
        "slow_s": float,
        "stall": float,
        "stall_s": float,
        "seed": int,
    }
    kwargs: dict = {}
    for item in (text or "").split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, raw = item.partition("=")
        key = key.strip()
        if not eq or key not in fields:
            known = ", ".join(fields)
            raise ValueError(
                f"bad process-fault parameter {item!r}; known: {known}"
            )
        try:
            kwargs[key] = fields[key](raw.strip())
        except ValueError:
            raise ValueError(
                f"bad value for process-fault parameter {key!r}: {raw!r}"
            ) from None
    return ProcessFaultModel(**kwargs)
