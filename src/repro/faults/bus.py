"""The lossy bus: :class:`~repro.online.messaging.MessageBus` under faults.

Where the base bus delivers every queued message to every neighbor at the
next round boundary, :class:`LossyMessageBus` routes each unicast attempt
through a :class:`~repro.faults.model.FaultInjector`: the attempt may be
dropped, duplicated, or delayed by extra rounds, and deliveries due while
the receiver is crashed are lost.  The Fig. 16 accounting of the base
class is unchanged — ``stats.messages`` still counts *attempted* unicast
deliveries (the radio transmissions paid for), while everything the fault
layer did to them lands in :class:`FaultStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..online.messaging import Message, MessageBus
from .model import FaultInjector

__all__ = ["FaultStats", "LossyMessageBus"]


@dataclass
class FaultStats:
    """Fault-layer accounting for one run (complements ``MessageStats``).

    ``drops`` counts link losses, ``crash_drops`` deliveries lost because
    the receiver was down, ``duplicates`` extra copies delivered,
    ``delayed`` deliveries that arrived late, ``retransmits`` UPD
    rebroadcasts, ``acks`` acknowledgement unicasts sent, ``giveups``
    receivers abandoned after the retransmit budget ran out,
    ``expiries`` stale standing advertisements discarded, ``aborts``
    negotiations cut off at the round cap, and ``crashed_skips``
    agent-rounds lost to outages.
    """

    drops: int = 0
    crash_drops: int = 0
    duplicates: int = 0
    delayed: int = 0
    retransmits: int = 0
    acks: int = 0
    giveups: int = 0
    expiries: int = 0
    aborts: int = 0
    crashed_skips: int = 0

    def merge(self, other: "FaultStats") -> None:
        """Accumulate another stats block into this one."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict — the unit the obs registry folds
        (``faults.drops`` etc.) and the shape stored in artifact meta."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def total_faults(self) -> int:
        """Every injected disruption (not the protocol's own reactions)."""
        return self.drops + self.crash_drops + self.duplicates + self.delayed

    def summary(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"FaultStats({parts or 'clean'})"


class LossyMessageBus(MessageBus):
    """Neighbor broadcast where every unicast leg can fail.

    The injector is shared across the buses of one run (one per
    replanning window), so the fault stream and the global round clock
    are continuous; the per-bus :class:`~repro.online.messaging.MessageStats`
    keeps the paper's transmission accounting exactly as the lossless bus
    does.  Delivery order is deterministic: queued order, with delayed
    messages interleaved by their due round — replaying the same fault
    trace reproduces every inbox byte for byte.
    """

    def __init__(
        self, neighbors: list[frozenset[int]], injector: FaultInjector
    ) -> None:
        super().__init__(neighbors)
        self.injector = injector
        self.fault_stats = injector.stats
        #: per-receiver (due_round, msg) queues on the *local* round clock.
        self._due: list[list[tuple[int, Message]]] = [[] for _ in neighbors]
        self._local_round = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def broadcast(self, msg: Message) -> None:
        """Queue ``msg`` for (faulty) delivery to the sender's neighbors."""
        nbrs = self.neighbors[msg.sender]
        self.stats.broadcasts += 1
        self.stats.messages += len(nbrs)
        for j in nbrs:
            self._route(msg, j)

    def unicast(self, msg: Message, receiver: int) -> None:
        """One addressed transmission (ACKs) — same fault exposure."""
        self.stats.broadcasts += 1
        self.stats.messages += 1
        self._route(msg, receiver)

    def _route(self, msg: Message, receiver: int) -> None:
        out = self.injector.link(msg.sender, receiver)
        fs = self.fault_stats
        if out.dropped:
            fs.drops += 1
            return
        if out.copies > 1:
            fs.duplicates += out.copies - 1
        if out.delay:
            fs.delayed += 1
        due = self._local_round + 1 + out.delay
        queue = self._due[receiver]
        for _ in range(out.copies):
            queue.append((due, msg))

    # ------------------------------------------------------------------
    # Round boundary
    # ------------------------------------------------------------------
    def advance_round(self) -> None:
        """Tick both clocks and deliver everything that matured.

        A delivery due while its receiver is crashed is lost for good —
        the radio does not buffer for a dead node.
        """
        self.stats.rounds += 1
        self._local_round += 1
        self.injector.tick()
        now = self._local_round
        fs = self.fault_stats
        for j, queue in enumerate(self._due):
            if not queue:
                self._inboxes[j] = []
                continue
            mature = [m for due, m in queue if due <= now]
            if mature:
                self._due[j] = [(due, m) for due, m in queue if due > now]
                if self.injector.crashed(j):
                    fs.crash_drops += len(mature)
                    mature = []
            self._inboxes[j] = mature

    def reset_inboxes(self) -> None:
        """Drop delivered *and* in-flight messages (between negotiations)."""
        super().reset_inboxes()
        self._due = [[] for _ in self.neighbors]
