"""The fault model: seeded, replayable radio and charger failures.

The paper's Algorithm 3 assumes reliable neighbor communication; real
deployments (the Powercast testbed of the TMC version, Figs. 19-25) have
anything but.  A :class:`FaultModel` describes what the radio and the
fleet may do wrong — per-delivery message loss / duplication / delay,
per-charger crash windows, staleness timeouts — as a small frozen value
object that travels through solver spec strings
(``online-haste:loss=0.1,crash=2``).

Replayability contract
----------------------
All fault randomness comes from one dedicated generator seeded by
``FaultModel.seed`` and consumed in protocol order, **never** from the
negotiation's own rng (whose stream must stay byte-identical to the
lossless run so color sampling and final draws are unaffected by the
fault layer).  The protocol is deterministic given the fault decisions,
so the same ``(network, model)`` pair replays the same run bit for bit;
every decision is additionally recorded in a :class:`FaultTrace` whose
:class:`ReplayInjector` re-serves it positionally — and *verifies* the
query context, so a divergent replay fails loudly instead of silently
drifting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

__all__ = [
    "CrashWindow",
    "FaultModel",
    "LinkOutcome",
    "FaultTrace",
    "FaultInjector",
    "ReplayInjector",
    "ReplayDivergence",
]


@dataclass(frozen=True)
class CrashWindow:
    """One charger outage: crashed during rounds ``[start, end)``.

    Rounds are the *global* bus-round clock of a run (monotone across
    negotiations and replanning windows), so a crash can span several
    negotiations — the recovering charger resumes with whatever state it
    had, and its neighbors' stale knowledge of it expires meanwhile.
    """

    charger: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.charger < 0:
            raise ValueError(f"charger must be >= 0, got {self.charger}")
        if not (0 <= self.start < self.end):
            raise ValueError(
                f"need 0 <= start < end, got [{self.start}, {self.end})"
            )

    def covers(self, round_index: int) -> bool:
        return self.start <= round_index < self.end


def _check_prob(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultModel:
    """Everything the radio and the fleet may do wrong, as one value.

    ``loss`` / ``duplicate`` / ``delay`` are per-unicast-delivery
    probabilities (a broadcast to ``d`` neighbors makes ``d`` independent
    draws); a delayed delivery arrives ``1..max_delay`` rounds late.
    ``crash`` chargers get a seeded outage window of ``crash_len`` rounds
    each (starting uniformly in ``[1, crash_horizon)``); explicit
    ``crashes`` windows are honored verbatim on top.  ``timeout`` is the
    stale-advertisement expiry (rounds a standing advertisement is
    trusted without being refreshed), ``retry`` the UPD retransmit
    budget, ``max_rounds`` the per-negotiation round cap that guarantees
    termination no matter what the injector does.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    max_delay: int = 3
    crash: int = 0
    crash_len: int = 12
    crash_horizon: int = 120
    crashes: tuple[CrashWindow, ...] = ()
    timeout: int = 6
    retry: int = 3
    max_rounds: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        _check_prob("loss", self.loss)
        _check_prob("duplicate", self.duplicate)
        _check_prob("delay", self.delay)
        if self.max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {self.max_delay}")
        if self.crash < 0:
            raise ValueError(f"crash must be >= 0, got {self.crash}")
        if self.crash_len < 1:
            raise ValueError(f"crash_len must be >= 1, got {self.crash_len}")
        if self.crash_horizon < 2:
            raise ValueError(
                f"crash_horizon must be >= 2, got {self.crash_horizon}"
            )
        if self.timeout < 1:
            raise ValueError(f"timeout must be >= 1, got {self.timeout}")
        if self.retry < 0:
            raise ValueError(f"retry must be >= 0, got {self.retry}")
        if self.max_rounds < 4:
            raise ValueError(f"max_rounds must be >= 4, got {self.max_rounds}")
        object.__setattr__(self, "crashes", tuple(self.crashes))

    def is_null(self) -> bool:
        """True when this model injects no fault at all.

        A null model is the contract behind the bit-identity guarantee:
        the negotiation routes through the untouched lossless fast path,
        so ``FaultModel()`` is indistinguishable — byte for byte — from
        not having a fault layer.
        """
        return (
            self.loss == 0.0
            and self.duplicate == 0.0
            and self.delay == 0.0
            and self.crash == 0
            and not self.crashes
        )

    def as_dict(self) -> dict:
        """Plain-scalar form (spec-parameter shaped; crashes as triples)."""
        return {
            "loss": self.loss,
            "duplicate": self.duplicate,
            "delay": self.delay,
            "max_delay": self.max_delay,
            "crash": self.crash,
            "crash_len": self.crash_len,
            "crash_horizon": self.crash_horizon,
            "crashes": [(w.charger, w.start, w.end) for w in self.crashes],
            "timeout": self.timeout,
            "retry": self.retry,
            "max_rounds": self.max_rounds,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultModel":
        payload = dict(payload)
        payload["crashes"] = tuple(
            CrashWindow(*triple) for triple in payload.get("crashes", ())
        )
        return cls(**payload)

    def injector(self, num_chargers: int) -> "FaultInjector":
        """A fresh injector for one run over ``num_chargers`` chargers."""
        return FaultInjector(self, num_chargers)


class LinkOutcome(NamedTuple):
    """What the injector decided for one unicast delivery attempt."""

    dropped: bool
    delay: int  # extra rounds past the usual next-round delivery
    copies: int  # 1, or 2 when duplicated


#: A recorded decision: (round, kind, a, b, dropped, delay, copies).
#: ``kind`` is "link" or "crash"; crash events record (charger, start, end).
TraceEvent = tuple


@dataclass
class FaultTrace:
    """The complete, ordered record of one injector's decisions.

    Two runs are *the same run* iff their traces are equal — the chaos
    suite pins that equality (and the resulting artifact equality) for
    seeded reruns, and replays a recorded trace through
    :class:`ReplayInjector` to prove the run is a pure function of it.
    """

    crash_windows: tuple[CrashWindow, ...] = ()
    events: list[TraceEvent] = field(default_factory=list)

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def digest(self) -> str:
        """sha256 over the canonical rendering (stable across processes)."""
        h = hashlib.sha256()
        for w in self.crash_windows:
            h.update(f"crash:{w.charger}:{w.start}:{w.end};".encode())
        for ev in self.events:
            h.update((":".join(map(repr, ev)) + ";").encode())
        return h.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultTrace):
            return NotImplemented
        return (
            self.crash_windows == other.crash_windows
            and self.events == other.events
        )

    def __len__(self) -> int:
        return len(self.events)


class ReplayDivergence(RuntimeError):
    """A replayed run queried the injector differently than the recording."""


class FaultInjector:
    """Draws fault decisions from the model's dedicated seeded stream.

    Owns the run-global round clock (ticked by the bus), the sampled
    crash windows, the run-level :class:`~repro.faults.bus.FaultStats`,
    and the :class:`FaultTrace` recording.  One injector serves a whole
    online run — every replanning window's bus shares it, so the fault
    stream, the crash clock, and the accounting are continuous across
    arrival events.
    """

    def __init__(self, model: FaultModel, num_chargers: int) -> None:
        from .bus import FaultStats  # local import: bus imports this module

        if num_chargers < 1:
            raise ValueError(f"num_chargers must be >= 1, got {num_chargers}")
        self.model = model
        self.num_chargers = num_chargers
        self._rng = np.random.default_rng(model.seed)
        self.round = 0
        self.stats = FaultStats()
        windows = list(self._sample_crash_windows())
        windows.extend(model.crashes)
        for w in windows:
            if w.charger >= num_chargers:
                raise ValueError(
                    f"crash window for charger {w.charger} but only "
                    f"{num_chargers} chargers"
                )
        self.crash_windows: tuple[CrashWindow, ...] = tuple(windows)
        self.trace = FaultTrace(crash_windows=self.crash_windows)
        for w in self.crash_windows:
            self.trace.record(("crash", w.charger, w.start, w.end))
        self._crashed_of: dict[int, list[CrashWindow]] = {}
        for w in self.crash_windows:
            self._crashed_of.setdefault(w.charger, []).append(w)

    def _sample_crash_windows(self):
        m = self.model
        for _ in range(m.crash):
            charger = int(self._rng.integers(0, self.num_chargers))
            start = int(self._rng.integers(1, m.crash_horizon))
            yield CrashWindow(charger, start, start + m.crash_len)

    # ------------------------------------------------------------------
    # Queries the bus / protocol makes
    # ------------------------------------------------------------------
    def tick(self) -> int:
        """Advance the run-global round clock (called by the bus)."""
        self.round += 1
        return self.round

    def crashed(self, charger: int) -> bool:
        """Whether ``charger`` is down in the current global round."""
        windows = self._crashed_of.get(charger)
        if not windows:
            return False
        r = self.round
        return any(w.covers(r) for w in windows)

    def link(self, sender: int, receiver: int) -> LinkOutcome:
        """Decide the fate of one unicast delivery attempt (recorded)."""
        m = self.model
        rng = self._rng
        dropped = m.loss > 0.0 and bool(rng.random() < m.loss)
        delay = 0
        copies = 1
        if not dropped:
            if m.duplicate > 0.0 and bool(rng.random() < m.duplicate):
                copies = 2
            if m.delay > 0.0 and bool(rng.random() < m.delay):
                delay = int(rng.integers(1, m.max_delay + 1))
        out = LinkOutcome(dropped, delay, copies)
        self.trace.record(
            ("link", self.round, sender, receiver, dropped, delay, copies)
        )
        return out


class ReplayInjector:
    """Re-serves a recorded :class:`FaultTrace`, verifying every query.

    Proves (and the chaos tests assert) that a faulty run is a pure
    function of its trace: feeding the recording back produces the
    bit-identical schedule.  Any mismatch between the live query and the
    recorded one raises :class:`ReplayDivergence` immediately.
    """

    def __init__(self, model: FaultModel, trace: FaultTrace) -> None:
        from .bus import FaultStats

        self.model = model
        self.crash_windows = trace.crash_windows
        self.stats = FaultStats()
        self.round = 0
        self._events = [ev for ev in trace.events if ev[0] == "link"]
        self._cursor = 0
        self.trace = FaultTrace(crash_windows=trace.crash_windows)
        for w in trace.crash_windows:
            self.trace.record(("crash", w.charger, w.start, w.end))
        self._crashed_of: dict[int, list[CrashWindow]] = {}
        for w in trace.crash_windows:
            self._crashed_of.setdefault(w.charger, []).append(w)

    def tick(self) -> int:
        self.round += 1
        return self.round

    def crashed(self, charger: int) -> bool:
        windows = self._crashed_of.get(charger)
        if not windows:
            return False
        r = self.round
        return any(w.covers(r) for w in windows)

    def link(self, sender: int, receiver: int) -> LinkOutcome:
        if self._cursor >= len(self._events):
            raise ReplayDivergence(
                f"replay exhausted after {self._cursor} link events but the "
                f"run queried link({sender}, {receiver}) at round {self.round}"
            )
        _kind, rnd, s, r, dropped, delay, copies = self._events[self._cursor]
        if (rnd, s, r) != (self.round, sender, receiver):
            raise ReplayDivergence(
                f"replay divergence at event {self._cursor}: recorded "
                f"(round={rnd}, {s}->{r}) but live query is "
                f"(round={self.round}, {sender}->{receiver})"
            )
        self._cursor += 1
        out = LinkOutcome(bool(dropped), int(delay), int(copies))
        self.trace.record(
            ("link", self.round, sender, receiver, out.dropped, out.delay, out.copies)
        )
        return out

    def exhausted(self) -> bool:
        """Whether every recorded link event has been consumed."""
        return self._cursor == len(self._events)
