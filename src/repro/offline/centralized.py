"""Centralized offline scheduler — paper Algorithm 2.

A vectorized TabularGreedy over the partition matroid of scheduling
policies.  For every color ``c ∈ [C]`` the algorithm sweeps all partitions
``(charger i, slot k)`` and greedily adds the S-C tuple maximizing the
sampled expectation ``F(Q) = E_c[f(sample_c(Q))]``; finally one color per
partition is drawn uniformly and the matching tuples become the schedule.

Approximation (Lemma 5.1 / Thm 5.1): ``1 − (1 − 1/C)^C − O(C⁻¹)`` for
HASTE-R, hence ``(1 − ρ)(1 − 1/e)`` for HASTE as ``C → ∞``; ``C = 1``
degenerates to the exact locally greedy (½ guarantee) with no sampling
noise.

Implementation notes (performance-guide driven):

* the expectation is estimated with **common random numbers** — an
  ``(S, #partitions)`` matrix of pre-drawn colors shared by every candidate
  evaluation (see :mod:`repro.submodular.estimation`);
* the per-partition candidate scan is one numpy expression: the objective
  returns the marginal of *every* policy against the matching sample rows
  at once (:meth:`repro.objective.haste.HasteObjective.partition_gains_rows`,
  which gathers only the ``(rows × receivable columns)`` block);
* the sweep is *lazy* by default (:mod:`repro.offline.lazy`): partitions
  whose receivable tasks are untouched in the matching rows reuse cached
  gains, and stale-upper-bound pruning skips provably idle visits — the
  schedule is identical to the eager sweep's, with the avoided work
  reported in :class:`OfflineResult`;
* partitions are visited in ``(slot, charger)`` order by default; the
  TabularGreedy guarantee is order-invariant (the paper leans on this for
  Thm 6.1), and the tests verify order invariance for ``C = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .. import obs
from ..core.network import IDLE_POLICY, ChargerNetwork
from ..core.policy import Schedule
from ..core.utility import UtilityFunction
from ..objective.haste import HasteObjective
from ..submodular.estimation import ColorSampler
from .lazy import LazySweepState

__all__ = ["OfflineResult", "CentralizedScheduler", "schedule_offline"]

#: Marginal gains below this are treated as zero (stay idle).
MIN_GAIN: float = 1e-12


@dataclass
class OfflineResult:
    """Outcome of a centralized offline run.

    ``objective_value`` is the HASTE-R value (no switching delay) of the
    final schedule — the quantity Algorithm 2 optimizes.  The delay-aware
    utility is computed by :func:`repro.sim.engine.execute_schedule`.
    """

    schedule: Schedule
    objective_value: float
    num_colors: int
    num_samples: int
    table: dict = field(repr=False, default_factory=dict)
    partitions: int = 0
    #: Partition visits with at least one matching sample — the eager
    #: algorithm's scan count (Thm 5.1's work unit), lazy or not.
    candidate_scans: int = 0
    #: Visits that actually ran the vectorized gain kernel.
    fresh_scans: int = 0
    #: Visits answered from the clean-partition gain cache.
    cached_reuses: int = 0
    #: Visits pruned outright by the stale upper bound.
    pruned_skips: int = 0

    def summary(self) -> str:
        return (
            f"OfflineResult(f={self.objective_value:.6g}, C={self.num_colors}, "
            f"S={self.num_samples}, partitions={self.partitions}, "
            f"scans={self.fresh_scans}/{self.candidate_scans})"
        )


class CentralizedScheduler:
    """Reusable Algorithm 2 runner bound to one network.

    Useful when many runs share the network (sweeps over ``C``): the
    objective's precomputation is shared, only the color draws change.
    """

    def __init__(
        self,
        network: ChargerNetwork,
        *,
        utility: UtilityFunction | None = None,
        use_sparse: bool = True,
        objective: HasteObjective | None = None,
    ) -> None:
        self.network = network
        # A caller-supplied objective (the prepared-state warm path) must
        # already be bound to this network; ``utility``/``use_sparse`` are
        # then carried by the objective itself.
        if objective is not None and objective.network is not network:
            raise ValueError("objective is bound to a different network")
        self.objective = (
            objective
            if objective is not None
            else HasteObjective(network, utility, use_sparse=use_sparse)
        )
        # Partitions in (slot, charger) order; chargers with only the idle
        # policy or no relevant slots never appear.
        parts: list[tuple[int, int]] = []
        for i in range(network.n):
            if network.policy_count(i) <= 1:
                continue
            for k in network.relevant_slots(i):
                parts.append((i, int(k)))
        parts.sort(key=lambda ik: (ik[1], ik[0]))
        self.partitions = parts

    def run(
        self,
        num_colors: int = 4,
        *,
        num_samples: int = 24,
        rng: np.random.Generator | None = None,
        group_order: Sequence[tuple[int, int]] | None = None,
        final_draws: int = 8,
        lazy: bool = True,
    ) -> OfflineResult:
        """Execute TabularGreedy and return the sampled schedule.

        ``final_draws`` independent color vectors are drawn at the sampling
        step and the best-scoring one is kept — a standard derandomization
        by sampling (the maximum over draws is at least the expectation the
        guarantee is stated for).  ``final_draws = 1`` is the literal
        Algorithm 2.

        ``lazy`` routes the sweep through the dirty-aware gain cache
        (:class:`~repro.offline.lazy.LazySweepState`): partitions whose
        receivable tasks are untouched in the matching sample rows reuse
        their cached gains, and partitions whose stale upper bound cannot
        clear ``MIN_GAIN`` are pruned without a scan.  ``lazy=False`` runs
        the eager reference sweep; both produce the same schedule.

        When the observability layer is enabled (:mod:`repro.obs`), the
        run is traced as an ``offline.run`` span with one
        ``offline.color_sweep`` child per color, and the scan counters
        reported in :class:`OfflineResult` are folded into the registry.
        """
        if num_colors < 1:
            raise ValueError(f"num_colors must be >= 1, got {num_colors}")
        with obs.span(
            "offline.run",
            colors=num_colors,
            lazy=lazy,
            sparse=self.objective.use_sparse,
        ):
            result = self._run(
                num_colors,
                num_samples=num_samples,
                rng=rng,
                group_order=group_order,
                final_draws=final_draws,
                lazy=lazy,
            )
        if obs.enabled():
            obs.inc("offline.runs")
            obs.inc("offline.partitions", result.partitions)
            obs.inc("offline.candidate_scans", result.candidate_scans)
            obs.inc("offline.fresh_scans", result.fresh_scans)
            obs.inc("offline.cached_reuses", result.cached_reuses)
            obs.inc("offline.pruned_skips", result.pruned_skips)
            obs.event(
                "offline.run",
                colors=num_colors,
                samples=result.num_samples,
                sparse=self.objective.use_sparse,
                lazy=lazy,
                value=result.objective_value,
                candidate_scans=result.candidate_scans,
                fresh_scans=result.fresh_scans,
                cached_reuses=result.cached_reuses,
                pruned_skips=result.pruned_skips,
            )
        return result

    def _run(
        self,
        num_colors: int,
        *,
        num_samples: int,
        rng: np.random.Generator | None,
        group_order: Sequence[tuple[int, int]] | None,
        final_draws: int,
        lazy: bool,
    ) -> OfflineResult:
        """The actual TabularGreedy sweep (see :meth:`run`)."""
        rng = rng if rng is not None else np.random.default_rng()
        order = list(group_order) if group_order is not None else self.partitions
        known_partitions = set(self.partitions)
        extra = [g for g in order if g not in known_partitions]
        if extra:
            raise ValueError(f"group_order contains unknown partitions: {extra!r}")

        sampler = ColorSampler(order, num_colors, num_samples, rng)
        S = sampler.num_samples
        energies = self.objective.zero_energy((S,))  # (S, m)
        sweep = (
            LazySweepState(self.objective, order, S, threshold=MIN_GAIN)
            if lazy
            else None
        )
        matches = sampler.matches_by_color()
        bits = (
            sweep.match_bits_by_color(sampler.colors, num_colors)
            if sweep is not None
            else None
        )

        table: dict[tuple[int, int, int], int] = {}
        scans = 0
        for c in range(num_colors):
            color_matches = matches[c]
            color_bits = bits[c] if bits is not None else None
            with obs.span("offline.color_sweep", color=c):
                for g, (i, k) in enumerate(order):
                    match = color_matches[g]
                    if match.size == 0:
                        continue
                    scans += 1
                    if sweep is not None:
                        mb = color_bits[g] if color_bits is not None else None
                        total = sweep.totals(energies, i, k, match, mb)
                        if total is None:
                            continue  # provably idle — bit-identical skip
                    else:
                        gains = self.objective.partition_gains_rows(
                            energies, match, i, k
                        )
                        total = gains.sum(axis=0) / S  # (P_i,)
                    best_p = int(total.argmax())
                    if best_p == IDLE_POLICY or total[best_p] <= MIN_GAIN:
                        continue
                    table[(i, k, c)] = best_p
                    if sweep is not None:
                        sweep.commit(energies, i, k, best_p, match, mb)
                    else:
                        self.objective.apply_rows(
                            energies, match, i, k, best_p
                        )

        if final_draws < 1:
            raise ValueError(f"final_draws must be >= 1, got {final_draws}")
        best_schedule: Schedule | None = None
        best_value = -np.inf
        with obs.span("offline.final_draws"):
            for _ in range(final_draws if num_colors > 1 else 1):
                candidate = Schedule(self.network)
                # One batched draw per vector — bit-identical to
                # per-partition scalar draws (the generator consumes the
                # same stream).
                draws = rng.integers(0, num_colors, size=len(order))
                for (i, k), c in zip(order, draws):
                    p = table.get((i, k, int(c)))
                    if p is not None:
                        candidate.set(i, k, p)
                value = self.objective.value_of_schedule(candidate)
                if value > best_value:
                    best_schedule, best_value = candidate, value
        assert best_schedule is not None
        schedule = best_schedule

        return OfflineResult(
            schedule=schedule,
            objective_value=best_value,
            num_colors=num_colors,
            num_samples=S,
            table=table,
            partitions=len(order),
            candidate_scans=scans,
            fresh_scans=sweep.fresh_scans if sweep is not None else scans,
            cached_reuses=sweep.cached_reuses if sweep is not None else 0,
            pruned_skips=sweep.pruned_skips if sweep is not None else 0,
        )


def schedule_offline(
    network: ChargerNetwork,
    num_colors: int = 4,
    *,
    num_samples: int = 24,
    rng: np.random.Generator | None = None,
    utility: UtilityFunction | None = None,
    final_draws: int = 8,
) -> OfflineResult:
    """One-shot convenience wrapper around :class:`CentralizedScheduler`."""
    return CentralizedScheduler(network, utility=utility).run(
        num_colors, num_samples=num_samples, rng=rng, final_draws=final_draws
    )
