"""Batched multi-instance baselines — one BLAS-shaped pass, B instances.

The serve layer and the benchmark harness solve many *similar* instances:
same config, different seeds.  Solving them one by one leaves numpy
dispatch as the dominant cost (a paper-scale GreedyUtility plan is ~6000
partition evaluations of a handful of small ufuncs each).  The drivers
here run the same algorithms with the per-partition element-wise work
stacked across the batch via :class:`~repro.objective.haste.BatchedCharger`
and the executor's per-slot accumulation shared across members, so the
dispatch count is ~independent of the batch size.

Bit-identity contract (float64): for every member ``b`` the returned
schedule and execution equal ``greedy_*_schedule(networks[b])`` /
``execute_schedule(networks[b], ...)`` *bit for bit*.  The argument, in
brief (DESIGN.md §14 has the long form):

* chargers are independent in both baselines (GreedyUtility keeps a
  private own-energy ledger; GreedyCover only reads static data), so
  reordering the ``(slot, charger)`` loops to ``(charger, slot)`` is exact;
* element-wise IEEE ops give the same lane values whether or not other
  lanes are stacked around them; padded lanes are exact ``+0.0`` / ``False``
  no-ops (see :class:`BatchedCharger`);
* every reduction that could reassociate — the gains GEMV, the delivered
  row-sum, the utility dot — is issued per member on a contiguous copy of
  its exact block, i.e. the very BLAS call the sequential path makes;
* the executor accumulates delivered energy slot-by-slot in ascending
  ``k`` exactly like the sequential loop; members idle at a slot receive
  ``+0.0`` (idle cover rows are all-``False``), which is a bitwise no-op
  on a non-negative accumulator.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..core.network import IDLE_POLICY, ChargerNetwork
from ..core.policy import Schedule
from ..core.utility import UtilityFunction
from ..objective.haste import BatchedCharger, HasteObjective
from ..sim.engine import ExecutionResult
from .baselines import MIN_GAIN, greedy_utility_schedule

__all__ = [
    "greedy_utility_schedule_batch",
    "greedy_cover_schedule_batch",
    "execute_schedule_batch",
]


def greedy_utility_schedule_batch(
    networks: list[ChargerNetwork],
    *,
    utilities: list[UtilityFunction | None] | None = None,
    dtype: np.dtype | type = np.float64,
) -> list[Schedule]:
    """GreedyUtility over a batch of networks (see module docstring).

    ``utilities[b]`` overrides network ``b``'s scoring utility exactly like
    the ``utility=`` parameter of :func:`greedy_utility_schedule`; all
    members must resolve to the same utility family.  ``dtype=np.float32``
    plans in single precision (linear-bounded utilities only) — schedules
    may then differ from float64 on near-ties, see DESIGN.md §14.
    """
    B = len(networks)
    utils = list(utilities) if utilities is not None else [None] * B
    if len(utils) != B:
        raise ValueError("utilities must match networks in length")
    objectives = [
        HasteObjective(net, u) for net, u in zip(networks, utils)
    ]
    if not all(obj.use_sparse for obj in objectives):
        # Non-restrictable custom utilities fall off the sparse path; keep
        # correctness by delegating those solves to the sequential driver.
        return [
            greedy_utility_schedule(net, utility=u)
            for net, u in zip(networks, utils)
        ]
    schedules = [Schedule(net) for net in networks]
    n_max = max((net.n for net in networks), default=0)
    for i in range(n_max):
        members = [
            b
            for b in range(B)
            if i < networks[b].n
            and networks[b].policy_count(i) > 1
            and objectives[b]._cols[i].size > 0
        ]
        if not members:
            continue
        bc = BatchedCharger(
            [(objectives[b], i) for b in members], dtype=dtype
        )
        ar = bc.arange
        rows = np.zeros((len(members), bc.num_slots), dtype=np.int64)
        for k in range(bc.num_slots):
            G, add = bc.gains(k)
            best = np.argmax(G, axis=1)
            commit = (best != IDLE_POLICY) & (G[ar, best] > MIN_GAIN)
            p_sel = np.where(commit, best, IDLE_POLICY)
            bc.apply(add, p_sel)
            rows[:, k] = p_sel
        for mpos, b in enumerate(members):
            K_b = networks[b].num_slots
            schedules[b].sel[i, :K_b] = rows[mpos, :K_b]
    return schedules


def greedy_cover_schedule_batch(
    networks: list[ChargerNetwork],
) -> list[Schedule]:
    """GreedyCover over a batch of networks.

    One ``(P_i, m) @ (m, K)`` boolean matmul per charger replaces the
    sequential path's ``K`` per-slot matvecs; boolean OR/AND logic is
    order-independent, so the per-column first-covering argmax selects
    exactly the policy :func:`greedy_cover_schedule` selects.
    """
    schedules = [Schedule(net) for net in networks]
    for net, sched in zip(networks, schedules):
        K = net.num_slots
        if K == 0:
            continue
        cols = np.arange(K)
        for i in range(net.n):
            if net.policy_count(i) <= 1:
                continue
            covered = net.cover_masks[i] @ net.active  # (P_i, K) bool
            best = np.argmax(covered, axis=0)
            commit = covered[best, cols]
            sched.sel[i, :] = np.where(commit, best, IDLE_POLICY)
    return schedules


def execute_schedule_batch(
    networks: list[ChargerNetwork],
    schedules: list[Schedule],
    *,
    rhos: list[float],
    utilities: list[UtilityFunction | None] | None = None,
) -> list[ExecutionResult]:
    """:func:`~repro.sim.engine.execute_schedule` over a batch of runs.

    Per-member results are bit-identical to the sequential executor: the
    per-slot delivered-energy accumulation runs in the same ascending-slot
    order with members stacked along a leading axis, and the final
    row-sum / utility / weighted-dot reductions are issued per member on
    contiguous copies of their exact blocks.
    """
    B = len(networks)
    if len(schedules) != B or len(rhos) != B:
        raise ValueError("networks, schedules, rhos must have equal lengths")
    utils = list(utilities) if utilities is not None else [None] * B
    if len(utils) != B:
        raise ValueError("utilities must match networks in length")
    utils = [
        u if u is not None else net.utility for u, net in zip(utils, networks)
    ]
    rhos = [float(r) for r in rhos]
    for r in rhos:
        if not (0.0 <= r <= 1.0):
            raise ValueError(f"rho must be in [0, 1], got {r}")
    ns = [net.n for net in networks]
    ms = [net.m for net in networks]
    Ks = [net.num_slots for net in networks]
    n_max = max(ns, default=0)
    m_max = max(ms, default=0)
    K_max = max(Ks, default=0)

    deliv = np.zeros((B, n_max, m_max))
    switch = [np.zeros((n, K), dtype=bool) for n, K in zip(ns, Ks)]
    frac = np.ones((B, n_max, K_max))
    sel_pad = np.zeros((B, n_max, K_max), dtype=np.int64)
    act_pad = np.zeros((B, m_max, K_max), dtype=bool)
    for b, net in enumerate(networks):
        sel_pad[b, : ns[b], : Ks[b]] = schedules[b].sel
        act_pad[b, : ms[b], : Ks[b]] = net.active

    with obs.span("sim.execute_batch", batch=B):
        # Switch scan: per (member, charger), vectorized over that
        # charger's non-idle slots.  Idle slots inherit the previous
        # orientation, so the previous *non-idle* target is the reference.
        for b, net in enumerate(networks):
            rho = rhos[b]
            sel = schedules[b].sel
            for i in range(ns[b]):
                ks = np.flatnonzero(sel[i] != IDLE_POLICY)
                if ks.size == 0:
                    continue
                targets = net.policy_orientations[i][sel[i, ks]]
                prev = np.empty_like(targets)
                prev[0] = np.nan
                prev[1:] = targets[:-1]
                switched = np.isnan(prev) | (np.abs(targets - prev) > 1e-12)
                switch[b][i, ks] = switched
                frac[b, i, ks] = np.where(switched, 1.0 - rho, 1.0)

        # Delivered-energy accumulation, stacked across members per
        # charger, ascending slot order (the sequential order).
        for i in range(n_max):
            idx = np.array([b for b in range(B) if i < ns[b]])
            sel_i = sel_pad[idx, i, :]  # (M, K_max)
            hot = np.flatnonzero(sel_i.any(axis=0))
            if hot.size == 0:
                continue
            M = idx.size
            p_count = max(int(networks[b].policy_count(i)) for b in idx)
            cov = np.zeros((M, p_count, m_max), dtype=bool)
            powt = np.zeros((M, m_max))
            for mpos, b in enumerate(idx):
                net = networks[b]
                cm = net.cover_masks[i]
                cov[mpos, : cm.shape[0], : ms[b]] = cm
                powt[mpos, : ms[b]] = net.power[i] * net.slot_seconds
            act_i = act_pad[idx]  # (M, m_max, K_max)
            frac_i = frac[idx, i, :]  # (M, K_max)
            ar = np.arange(M)
            acc = np.zeros((M, m_max))
            for k in hot:
                mask = cov[ar, sel_i[:, k], :] & act_i[:, :, k]
                acc += (powt * frac_i[:, k][:, None]) * mask
            deliv[idx, i, :] = acc

        redo = [b for b in range(B) if rhos[b] != 0.0]
        relaxed_map: dict[int, float] = {}
        if redo:
            zero = execute_schedule_batch(
                [networks[b] for b in redo],
                [schedules[b] for b in redo],
                rhos=[0.0] * len(redo),
                utilities=[utils[b] for b in redo],
            )
            relaxed_map = {
                b: r.total_utility for b, r in zip(redo, zero)
            }

        results = []
        for b, net in enumerate(networks):
            delivered = np.ascontiguousarray(deliv[b, : ns[b], : ms[b]])
            energies = delivered.sum(axis=0)
            task_utilities = np.asarray(utils[b](energies), dtype=float)
            total = float(task_utilities @ net.weights)
            relaxed = relaxed_map.get(b, total)
            results.append(
                ExecutionResult(
                    energies=energies,
                    task_utilities=task_utilities,
                    total_utility=total,
                    relaxed_utility=relaxed,
                    switches=switch[b],
                    delivered=delivered,
                )
            )

    if obs.enabled():
        obs.inc("sim.executions", B)
        obs.inc(
            "sim.charger_slots",
            sum(
                int(np.count_nonzero(s.sel != IDLE_POLICY)) for s in schedules
            ),
        )
        obs.inc(
            "sim.switches", sum(int(np.count_nonzero(s)) for s in switch)
        )

    return results
