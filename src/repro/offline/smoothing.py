"""Switch smoothing: a delay-aware local-improvement post-pass.

Algorithm 2 (and the distributed Algorithm 3) optimize the *relaxed*
objective, which ignores the switching delay; their guarantee absorbs the
worst case into the ``(1 − ρ)`` factor (Thm 5.1).  In practice the relaxed
greedy sometimes alternates a charger between two near-tied dominant sets
on consecutive slots, paying ``ρ`` twice for negligible relaxed gain.

:func:`smooth_switches` removes exactly that pathology: wherever a charger
rotates at slot ``k``, it tries keeping the *previous* slot's policy
instead, and accepts the change iff the **delay-aware** overall utility
strictly improves.  Because only improvements are accepted, every
theoretical guarantee stated for the input schedule still holds for the
output — the pass is a pure Pareto move.

The delta evaluation is incremental (per the optimization guides: compute
less, not faster): changing ``sel[i, k]`` only perturbs charger ``i``'s
energy contribution at slot ``k`` and the switch flag of its next non-idle
slot, so each candidate costs ``O(m)`` instead of a full re-execution.
"""

from __future__ import annotations

import numpy as np

from ..core.network import IDLE_POLICY, ChargerNetwork
from ..core.policy import Schedule
from ..core.utility import UtilityFunction

__all__ = ["smooth_switches"]

_TOL = 1e-12


def _charger_contribution(
    network: ChargerNetwork,
    i: int,
    k: int,
    policy: int,
    switched: bool,
    rho: float,
    active: np.ndarray | None = None,
) -> np.ndarray:
    """Energy vector charger ``i`` delivers at slot ``k`` with ``policy``."""
    if policy == IDLE_POLICY:
        return np.zeros(network.m)
    frac = (1.0 - rho) if switched else 1.0
    act = network.active if active is None else active
    mask = network.cover_masks[i][policy] & act[:, k]
    out = np.zeros(network.m)
    if frac > 0.0 and mask.any():
        out[mask] = network.power[i][mask] * network.slot_seconds * frac
    return out


def _recompute_switches(
    network: ChargerNetwork, schedule: Schedule, i: int
) -> np.ndarray:
    """Switch flags for one charger under the idle-keeps-orientation rule."""
    K = network.num_slots
    flags = np.zeros(K, dtype=bool)
    orients = network.policy_orientations[i]
    current = np.nan
    for k in range(K):
        p = schedule.sel[i, k]
        if p == IDLE_POLICY:
            continue
        target = orients[p]
        flags[k] = bool(np.isnan(current) or abs(target - current) > 1e-12)
        current = target
    return flags


def smooth_switches(
    network: ChargerNetwork,
    schedule: Schedule,
    *,
    rho: float,
    utility: UtilityFunction | None = None,
    max_passes: int = 3,
    task_mask: np.ndarray | None = None,
    start_slot: int = 0,
) -> Schedule:
    """Delay-aware local improvement of a schedule (see module docstring).

    Returns a new schedule; the input is not modified.  With ``rho == 0``
    switching is free and the schedule is returned unchanged.  An optional
    ``task_mask`` restricts both activity and scoring to the masked-in
    tasks — the online runtime smooths per replanning window with only the
    already-released tasks visible, so no clairvoyance leaks in.
    """
    if not (0.0 <= rho <= 1.0):
        raise ValueError(f"rho must be in [0, 1], got {rho}")
    util = utility if utility is not None else network.utility
    sched = schedule.copy()
    if rho == 0.0 or network.num_slots == 0:
        return sched

    weights = network.weights
    active = network.active
    if task_mask is not None:
        mask = np.asarray(task_mask, dtype=bool)
        weights = np.where(mask, weights, 0.0)
        active = active & mask[:, None]
    # Current delay-aware per-task energies.
    switch_flags = [
        _recompute_switches(network, sched, i) for i in range(network.n)
    ]
    energies = np.zeros(network.m)
    for i in range(network.n):
        for k in np.flatnonzero(sched.sel[i]):
            energies += _charger_contribution(
                network,
                i,
                int(k),
                int(sched.sel[i, k]),
                bool(switch_flags[i][k]),
                rho,
                active,
            )

    def total(e: np.ndarray) -> float:
        return float(np.asarray(util(e)) @ weights)

    for _ in range(max_passes):
        improved = False
        for i in range(network.n):
            orients = network.policy_orientations[i]
            for k in range(max(1, start_slot), network.num_slots):
                if not switch_flags[i][k]:
                    continue
                p_old = int(sched.sel[i, k])
                if p_old == IDLE_POLICY:
                    continue
                # Candidate: keep the previous slot's physical orientation by
                # re-selecting the previous effective policy at slot k.
                prev_nonidle = sched.sel[i, :k]
                prev_idx = np.flatnonzero(prev_nonidle)
                if prev_idx.size == 0:
                    continue
                p_new = int(sched.sel[i, int(prev_idx[-1])])
                if p_new == p_old:
                    continue

                # Next non-idle slot of charger i after k: its switch flag
                # may change when slot k's orientation changes.
                later = np.flatnonzero(sched.sel[i, k + 1 :])
                k_next = int(later[0]) + k + 1 if later.size else None

                delta = np.zeros(network.m)
                delta -= _charger_contribution(network, i, k, p_old, True, rho, active)
                delta += _charger_contribution(network, i, k, p_new, False, rho, active)
                if k_next is not None:
                    p_next = int(sched.sel[i, k_next])
                    old_next_switch = bool(switch_flags[i][k_next])
                    new_next_switch = bool(
                        abs(orients[p_next] - orients[p_new]) > 1e-12
                    )
                    if old_next_switch != new_next_switch:
                        delta -= _charger_contribution(
                            network, i, k_next, p_next, old_next_switch, rho, active
                        )
                        delta += _charger_contribution(
                            network, i, k_next, p_next, new_next_switch, rho, active
                        )

                gain = total(energies + delta) - total(energies)
                if gain > _TOL:
                    sched.sel[i, k] = p_new
                    energies += delta
                    switch_flags[i] = _recompute_switches(network, sched, i)
                    improved = True
        if not improved:
            break
    return sched
