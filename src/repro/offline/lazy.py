"""Dirty-aware lazy partition sweep for the TabularGreedy schedulers.

The eager Algorithm 2 loop re-scans every partition ``(charger i, slot k)``
once per color, but the gain vector of a partition only depends on the
energies of the tasks charger ``i`` can reach (``T_i``) in the sample rows
whose color draw matches — and those energies only change when some
earlier commit actually charged one of those tasks in one of those rows.
Three facts let the sweep answer many visits without running the full
matched-rows gain kernel, *without changing a single scheduling decision*:

* **Clean reuse.**  All sample rows start from the same common energy row
  (zeros offline).  Until a commit touches a task ``j ∈ T_i`` in a matching
  row, every matching row still equals that common row on the ``T_i``
  columns, so the per-row gain vector equals the *base gains* computed once
  against the common row (a single-row kernel, computed lazily at the first
  clean visit) and the expectation is their sum over ``|match|`` identical
  rows.  The sum is materialized with the same pairwise reduction the fresh
  scan would use, so the reused totals are bit-identical.
* **Stale upper bounds (CELF-style).**  The objective is submodular:
  per-row marginal gains only shrink as energy accumulates, so the base
  gains remain valid upper bounds forever.  If even the scaled upper bound
  cannot clear the idle threshold, the partition is pruned without a scan —
  the eager scan would have chosen idle too.
* **Saturation pruning.**  For utilities with a hard saturation point
  (:meth:`~repro.core.utility.UtilityFunction.saturation_energies` — the
  paper's linear-bounded utility saturates at ``E_j``), a task at or past
  saturation has *exactly zero* marginal gain.  A visit whose every
  gain-carrying column (nonzero weight, some policy adds energy) is
  saturated in every matching row therefore totals exactly ``0.0`` for all
  policies — provably idle, skipped before the kernel runs.  At paper
  scale (``f ≈ 0.74`` of demand met) this catches every idle visit of the
  later color sweeps.

Unlike :func:`repro.submodular.greedy.lazy_greedy_uniform` (whose CELF heap
*reorders* candidate evaluation under a cardinality constraint), the
locally greedy partition order here is fixed, so the heap machinery reduces
to the bound check itself; the dirtiness tracking is what recovers the
skipped work.  Dirtiness is tracked per ``(task, sample row)`` — packed
into one ``uint64`` bitmask per task when ``S ≤ 64`` — so that, for
``C > 1``, a commit only dirties the rows whose draw matched its color and
partitions negotiating other colors keep reusing their cached gains.

The sweep is exact: reused totals are bitwise the values the eager scan
would compute, and pruned partitions are provably idle.  The equivalence
tests assert the resulting schedules are identical to the eager reference
on seeded instances.
"""

from __future__ import annotations

import numpy as np

from ..objective.haste import HasteObjective

__all__ = ["LazySweepState"]


class LazySweepState:
    """Gain cache + dirtiness tracker for one TabularGreedy run.

    Parameters
    ----------
    objective:
        The bound :class:`~repro.objective.haste.HasteObjective`.
    partitions:
        The ``(charger, slot)`` groups the sweep will visit (accepted for
        interface symmetry; state is allocated lazily per visited group).
    num_samples:
        ``S`` — number of Monte Carlo color sample rows.
    initial_row:
        The common per-task energy row all samples start from (``None`` →
        zeros).  Base gains are computed against it.
    threshold:
        The scheduler's idle gain floor (``MIN_GAIN``); totals at or below
        it never commit, which is what makes pruning safe.
    """

    def __init__(
        self,
        objective: HasteObjective,
        partitions: list[tuple[int, int]],
        num_samples: int,
        initial_row: np.ndarray | None = None,
        threshold: float = 0.0,
    ) -> None:
        self.objective = objective
        self.num_samples = int(num_samples)
        self.threshold = float(threshold)
        m = objective.network.m
        row = (
            np.zeros(m, dtype=float)
            if initial_row is None
            else np.asarray(initial_row, dtype=float)
        )
        self._row1 = row[None, :]  # the (1, P) base-gain kernel input
        # Base per-policy gains against the common initial row: both the
        # clean-reuse values and the permanent upper bounds.  Filled lazily
        # at each partition's first clean visit.
        self.base_gains: dict[tuple[int, int], np.ndarray] = {}
        self.base_max: dict[tuple[int, int], float] = {}
        # dirty(j, s): task j's energy in sample row s has diverged from the
        # common initial row.  Packed as one uint64 bitmask per task when
        # the rows fit (the default S = 24 does).
        self._packed = self.num_samples <= 64
        if self._packed:
            self.dirty_bits = np.zeros(m, dtype=np.uint64)
            self._pow2 = np.uint64(1) << np.arange(
                self.num_samples, dtype=np.uint64
            )
        else:
            self.dirty = np.zeros((m, self.num_samples), dtype=bool)
        # Saturation pruning state (sparse kernels + saturating utility
        # only): per charger, the saturation energies of its receivable
        # columns; per partition, the column positions that can carry gain.
        sat = objective.utility.saturation_energies()
        if sat is not None and objective.use_sparse:
            sat_full = np.broadcast_to(np.asarray(sat, dtype=float), (m,))
            self._sat_cols = [sat_full[cols] for cols in objective._cols]
        else:
            self._sat_cols = None
        self._live: dict[tuple[int, int], np.ndarray] = {}
        # Work counters — reported through OfflineResult and folded into
        # the repro.obs registry (offline.fresh_scans / cached_reuses /
        # pruned_skips) by CentralizedScheduler.run when tracing is on.
        self.fresh_scans = 0
        self.cached_reuses = 0
        self.pruned_skips = 0

    def counters(self) -> dict[str, int]:
        """The sweep's work counters (``fresh + cached + pruned`` accounts
        for every visit with a nonempty match)."""
        return {
            "fresh_scans": self.fresh_scans,
            "cached_reuses": self.cached_reuses,
            "pruned_skips": self.pruned_skips,
        }

    def _sat_thresholds(self, charger: int, slot: int) -> np.ndarray:
        """Per-column saturation thresholds for one partition's prune test.

        A column with zero weight, or one no policy of this partition adds
        energy to, contributes exactly ``0.0`` to every candidate's total —
        it cannot block a saturation prune, so its threshold is ``-inf``
        (always "saturated").  An empty result means no column can carry
        gain at all (the visit is unconditionally idle).
        """
        key = (charger, slot)
        thr = self._live.get(key)
        if thr is None:
            add = self.objective.added_energy_cols(charger, slot)
            w = self.objective._w_cols[charger]
            live = add.any(axis=0) & (w != 0.0)
            sat = self._sat_cols[charger]
            if live.all():
                thr = sat
            elif not live.any():
                thr = sat[:0]
            else:
                thr = np.where(live, sat, -np.inf)
            self._live[key] = thr
        return thr

    def match_bits_by_color(
        self, colors: np.ndarray, num_colors: int
    ) -> list[np.ndarray] | None:
        """Bulk-precomputed row bitmasks for every ``(group, color)`` pair.

        ``colors`` is the sampler's ``(S, G)`` draw matrix; the result's
        ``[c][g]`` entry is the OR of ``2**row`` over the rows matching
        color ``c`` for group ``g`` — what :meth:`totals` /
        :meth:`mark_dirty` would otherwise rebuild per visit.  ``None``
        when rows don't fit the packed representation.
        """
        if not self._packed:
            return None
        pw = self._pow2[:, None]
        return [
            ((colors == c) * pw).sum(axis=0, dtype=np.uint64)
            for c in range(num_colors)
        ]

    def totals(
        self,
        energies: np.ndarray,
        charger: int,
        slot: int,
        match: np.ndarray,
        match_bits: np.uint64 | None = None,
    ) -> np.ndarray | None:
        """Expected gains ``(P_i,)`` for one partition visit.

        Returns ``None`` when the visit is *provably idle* (stale upper
        bound or saturation) — the eager scan would have chosen idle too.
        Otherwise the returned totals are bitwise what the eager scan
        computes: fresh kernel runs for dirty partitions, bit-identical
        cached sums for clean ones.  Exactly one work counter is bumped per
        call, so ``fresh + cached + pruned`` accounts for every visit.
        """
        key = (charger, slot)
        S = self.num_samples
        bound = self.base_max.get(key)
        if bound is not None and bound * (match.size / S) <= self.threshold:
            # Upper bound says even the best policy stays idle — prune.
            self.pruned_skips += 1
            return None
        obj = self.objective
        cols = obj._cols[charger]
        if self._packed:
            if match_bits is None:
                match_bits = np.bitwise_or.reduce(self._pow2[match])
            clean = not (self.dirty_bits[cols] & match_bits).any()
        else:
            clean = not self.dirty[cols[:, None], match].any()
        if clean:
            base = self.base_gains.get(key)
            if base is None:
                base = obj.partition_gains(self._row1, charger, slot)[0]
                self.base_gains[key] = base
                self.base_max[key] = float(base.max()) if base.size else 0.0
            self.cached_reuses += 1
            # Every matching row equals the initial common row on the
            # receivable columns: reduce |match| copies of the base gains
            # with the same pairwise sum the fresh kernel would use.
            return (
                np.broadcast_to(base, (match.size, base.size)).sum(axis=0) / S
            )
        if obj.use_sparse:
            cur = energies[match[:, None], cols]
            if self._sat_cols is not None:
                thr = self._live.get(key)
                if thr is None:
                    thr = self._sat_thresholds(charger, slot)
                if thr.size == 0 or (cur >= thr).all():
                    # Every gain-carrying column is saturated in every
                    # matching row: all totals are exactly 0.0 — idle.
                    self.pruned_skips += 1
                    return None
            self.fresh_scans += 1
            gains = obj._gains_cols(cur, charger, slot)
        else:
            self.fresh_scans += 1
            gains = obj.partition_gains_rows(energies, match, charger, slot)
        return gains.sum(axis=0) / S

    def commit(
        self,
        energies: np.ndarray,
        charger: int,
        slot: int,
        policy: int,
        match: np.ndarray,
        match_bits: np.uint64 | None = None,
    ) -> None:
        """Apply a committed policy to the matched rows and record the dirt.

        Fuses :meth:`HasteObjective.apply_rows` with :meth:`mark_dirty` —
        bitwise the same state updates, one cache lookup instead of three.
        """
        obj = self.objective
        if obj.use_sparse:
            add = obj.added_energy_cols(charger, slot)
            energies[match[:, None], obj._cols[charger]] += add[policy]
        else:
            obj.apply_rows(energies, match, charger, slot, policy)
        self.mark_dirty(charger, slot, policy, match, match_bits)

    def mark_dirty(
        self,
        charger: int,
        slot: int,
        policy: int,
        match: np.ndarray,
        match_bits: np.uint64 | None = None,
    ) -> None:
        """Record a commit: the charged tasks diverge in the matched rows."""
        changed = self.objective.changed_tasks(charger, slot, policy)
        if changed.size == 0 or match.size == 0:
            return
        if self._packed:
            if match_bits is None:
                match_bits = np.bitwise_or.reduce(self._pow2[match])
            self.dirty_bits[changed] |= match_bits
        else:
            self.dirty[changed[:, None], match] = True
