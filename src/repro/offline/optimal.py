"""Exact optimal schedules for small instances.

The paper validates its approximation ratios against a brute-force optimum
on small networks (Figs. 8–9).  Enumerating all policy combinations is
exponential, so alongside the literal brute force (used to certify the
solver in tests) this module formulates HASTE-R as a **mixed-integer linear
program** solved by scipy's HiGHS backend:

* binaries ``x_{i,k,p}`` — charger ``i`` selects dominant set ``p`` at slot
  ``k`` (``Σ_p x_{i,k,p} ≤ 1``: the partition matroid);
* continuous ``u_j ∈ [0, 1]`` — task ``j``'s utility, constrained by
  ``u_j ≤ energy_j / E_j``; since we *maximize* ``Σ w_j u_j`` and the
  linear-bounded utility is concave piecewise-linear, these two upper
  envelopes make the LP relaxation of ``u`` exact given the binaries.

``include_switching=True`` additionally models the switching delay with
switch indicators ``z_{i,k}`` (forced to 1 whenever the selected policy
differs from the previous slot's, with the initial orientation Φ counting
as different) and products ``s = x·z`` linearized as ``s ≥ x + z − 1``.
Note one modelling simplification, documented for honesty: the MILP treats
an idle slot as breaking orientation continuity, whereas the execution
engine lets an idle charger keep its last orientation; the MILP optimum
with switching is therefore a (very slightly) conservative lower bound.
The default HASTE-R optimum is an *upper* bound on the HASTE optimum, which
is the conservative direction for verifying approximation-ratio claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.network import ChargerNetwork
from ..core.policy import Schedule
from ..core.utility import LinearBoundedUtility
from ..objective.haste import HasteObjective, HasteSetFunction
from ..submodular.exact import brute_force_partition
from ..submodular.matroid import haste_policy_matroid

__all__ = ["OptimalResult", "optimal_schedule", "brute_force_optimal"]


@dataclass
class OptimalResult:
    """An exact optimum: the schedule and its objective value."""

    schedule: Schedule
    objective_value: float
    include_switching: bool
    status: str

    def summary(self) -> str:
        tag = "HASTE" if self.include_switching else "HASTE-R"
        return f"OptimalResult({tag} OPT = {self.objective_value:.6g}, {self.status})"


def _require_linear_bounded(network: ChargerNetwork) -> None:
    if not isinstance(network.utility, LinearBoundedUtility):
        raise TypeError(
            "the MILP formulation requires the paper's linear-bounded utility; "
            f"got {type(network.utility).__name__}"
        )


def optimal_schedule(
    network: ChargerNetwork,
    *,
    include_switching: bool = False,
    rho: float = 0.0,
    time_limit: float | None = None,
) -> OptimalResult:
    """Solve for the exact optimal schedule with HiGHS.

    With ``include_switching=False`` (default) this is the HASTE-R optimum
    ``Ū*_R ≥ Ū*`` — the reference the approximation-ratio experiments
    divide by.  With ``include_switching=True`` pass the switching delay
    ``rho`` (fraction of a slot).
    """
    _require_linear_bounded(network)
    if include_switching and not (0.0 <= rho < 1.0):
        raise ValueError(f"rho must be in [0, 1), got {rho}")

    objective = HasteObjective(network)
    items: list[tuple[int, int, int]] = []
    partitions: list[tuple[int, int]] = []
    for i in range(network.n):
        p_count = network.policy_count(i)
        if p_count <= 1:
            continue
        for k in network.relevant_slots(i):
            partitions.append((i, int(k)))
            for p in range(1, p_count):
                items.append((i, int(k), p))
    m = network.m
    nx = len(items)

    # Energy-per-required-energy coefficients a[v, j] for each item v.
    a = np.zeros((nx, m))
    for v, (i, k, p) in enumerate(items):
        a[v] = objective.added_energy(i, k)[p] / network.required_energy

    part_index = {ik: r for r, ik in enumerate(partitions)}
    item_rows = [part_index[(i, k)] for (i, k, _p) in items]

    if not include_switching:
        # Variables: [x (nx binaries), u (m in [0,1])].
        nvar = nx + m
        c = np.zeros(nvar)
        c[nx:] = -network.weights  # maximize Σ w u

        cons = []
        if partitions:
            sel = sparse.csr_matrix(
                (np.ones(nx), (item_rows, np.arange(nx))),
                shape=(len(partitions), nvar),
            )
            cons.append(LinearConstraint(sel, -np.inf, 1.0))
        # u_j − Σ a[v, j] x_v ≤ 0
        env = sparse.hstack(
            [sparse.csr_matrix(-a.T), sparse.eye(m, format="csr")], format="csr"
        )
        cons.append(LinearConstraint(env, -np.inf, 0.0))

        integrality = np.concatenate([np.ones(nx), np.zeros(m)])
        bounds = Bounds(np.zeros(nvar), np.ones(nvar))
    else:
        # Variables: [x (nx), z (#partitions), s (nx), u (m)].
        npart = len(partitions)
        nvar = nx + npart + nx + m
        xs, zs, ss, us = (
            slice(0, nx),
            slice(nx, nx + npart),
            slice(nx + npart, nx + npart + nx),
            slice(nx + npart + nx, nvar),
        )
        c = np.zeros(nvar)
        c[us] = -network.weights

        cons = []
        if partitions:
            sel = sparse.csr_matrix(
                (np.ones(nx), (item_rows, np.arange(nx))), shape=(npart, nvar)
            )
            cons.append(LinearConstraint(sel, -np.inf, 1.0))

        # Switch forcing: x_{i,k,p} − x_{i,k−1,p} − z_{i,k} ≤ 0; if (i,k−1)
        # is not a partition (idle by construction) the previous term drops
        # and any selection forces a switch (initial orientation Φ / idle
        # breaks continuity in this model).
        rows, cols, vals = [], [], []
        row = 0
        item_index = {ikp: v for v, ikp in enumerate(items)}
        for v, (i, k, p) in enumerate(items):
            rows.append(row), cols.append(v), vals.append(1.0)
            prev = item_index.get((i, k - 1, p))
            if prev is not None:
                rows.append(row), cols.append(prev), vals.append(-1.0)
            rows.append(row), cols.append(nx + part_index[(i, k)]), vals.append(-1.0)
            row += 1
        if row:
            sw = sparse.csr_matrix((vals, (rows, cols)), shape=(row, nvar))
            cons.append(LinearConstraint(sw, -np.inf, 0.0))

        # Linearized product: s_v ≥ x_v + z_{part(v)} − 1.
        rows, cols, vals = [], [], []
        for v in range(nx):
            rows += [v, v, v]
            cols += [v, nx + item_rows[v], nx + npart + v]
            vals += [1.0, 1.0, -1.0]
        prod = sparse.csr_matrix((vals, (rows, cols)), shape=(nx, nvar))
        cons.append(LinearConstraint(prod, -np.inf, 1.0))

        # u_j ≤ Σ a x − ρ Σ a s.
        env = sparse.hstack(
            [
                sparse.csr_matrix(-a.T),
                sparse.csr_matrix((m, npart)),
                sparse.csr_matrix(rho * a.T),
                sparse.eye(m, format="csr"),
            ],
            format="csr",
        )
        cons.append(LinearConstraint(env, -np.inf, 0.0))

        integrality = np.concatenate(
            [np.ones(nx), np.ones(npart), np.zeros(nx), np.zeros(m)]
        )
        bounds = Bounds(np.zeros(nvar), np.ones(nvar))

    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    res = milp(
        c=c,
        constraints=cons,
        integrality=integrality,
        bounds=bounds,
        options=options,
    )
    if res.x is None:
        raise RuntimeError(f"MILP solver failed: {res.message}")

    schedule = Schedule(network)
    for v, (i, k, p) in enumerate(items):
        if res.x[v] > 0.5:
            schedule.set(i, k, p)
    value = objective.value_of_schedule(schedule)
    if include_switching:
        # Report the solver's delay-aware objective rather than HASTE-R.
        value = float(-res.fun)
    return OptimalResult(
        schedule=schedule,
        objective_value=value,
        include_switching=include_switching,
        status=res.message,
    )


def brute_force_optimal(
    network: ChargerNetwork, *, max_combinations: int = 2_000_000
) -> OptimalResult:
    """Literal enumeration of all policy combinations (HASTE-R).

    Exponential; certifies :func:`optimal_schedule` on tiny instances.
    """
    objective = HasteObjective(network)
    f = HasteSetFunction(objective)
    matroid = haste_policy_matroid(network)
    best_set, best_val = brute_force_partition(
        f, matroid, max_combinations=max_combinations
    )
    return OptimalResult(
        schedule=objective.items_to_schedule(best_set),
        objective_value=best_val,
        include_switching=False,
        status="brute force",
    )
