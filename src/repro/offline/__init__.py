"""Centralized offline scheduling: Algorithm 2, baselines, exact optima."""

from .baselines import (
    greedy_cover_schedule,
    greedy_utility_schedule,
    random_schedule,
    static_orientation_schedule,
)
from .centralized import CentralizedScheduler, OfflineResult, schedule_offline
from .optimal import OptimalResult, brute_force_optimal, optimal_schedule
from .smoothing import smooth_switches

__all__ = [
    "CentralizedScheduler",
    "OfflineResult",
    "OptimalResult",
    "brute_force_optimal",
    "greedy_cover_schedule",
    "greedy_utility_schedule",
    "optimal_schedule",
    "random_schedule",
    "schedule_offline",
    "smooth_switches",
    "static_orientation_schedule",
]
