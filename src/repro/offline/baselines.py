"""Comparison algorithms — paper §7.2 plus two extra ablation baselines.

The paper proposes two baselines (there being no prior art for directional
charging task scheduling):

* **GreedyUtility** — every charger independently picks, slot by slot, the
  orientation (dominant task set) that maximizes *its own* charging-utility
  gain, ignoring what neighboring chargers deliver.  The charger therefore
  accounts only for the energy it has itself delivered to each task.
* **GreedyCover** — identical except the per-slot pick maximizes the
  *number of active tasks covered* (ties to the lower policy index).

Both are trivially distributable (each charger acts on local knowledge
only), which is why the paper uses them in both the offline and online
comparisons; the online runtime re-runs them with the same information
delays as HASTE-DO.

Extras for ablations (not in the paper):

* **RandomSchedule** — uniformly random non-idle policy per relevant slot;
  a sanity floor.
* **StaticOrientation** — each charger picks one orientation for the whole
  horizon (the best by GreedyUtility accounting over all slots); measures
  the value of *re-orientation over time*, the paper's core mechanism.
"""

from __future__ import annotations

import numpy as np

from ..core.network import IDLE_POLICY, ChargerNetwork
from ..core.policy import Schedule
from ..core.utility import UtilityFunction
from ..objective.haste import HasteObjective

__all__ = [
    "greedy_utility_schedule",
    "greedy_cover_schedule",
    "random_schedule",
    "static_orientation_schedule",
]

MIN_GAIN: float = 1e-12


def greedy_utility_schedule(
    network: ChargerNetwork,
    *,
    utility: UtilityFunction | None = None,
    start_slot: int = 0,
    schedule: Schedule | None = None,
    own_energy: np.ndarray | None = None,
) -> Schedule:
    """GreedyUtility baseline (paper §7.2).

    Each charger keeps a private per-task energy ledger containing only the
    energy *it* delivered, and at every slot selects the policy with the
    largest weighted utility gain against that ledger.  The optional
    ``start_slot`` / ``schedule`` / ``own_energy`` parameters let the online
    runtime resume the same policy mid-horizon on a partially known network.

    ``own_energy`` has shape ``(n, m)``; it is mutated in place.
    """
    objective = HasteObjective(network, utility)
    sched = schedule if schedule is not None else Schedule(network)
    own = own_energy if own_energy is not None else np.zeros((network.n, network.m))
    for k in range(start_slot, network.num_slots):
        for i in range(network.n):
            if network.policy_count(i) <= 1:
                continue
            gains = objective.partition_gains(own[i], i, k)  # (P_i,)
            best_p = int(np.argmax(gains))
            if best_p != IDLE_POLICY and gains[best_p] > MIN_GAIN:
                sched.set(i, k, best_p)
                objective.apply(own[i], i, k, best_p)
    return sched


def greedy_cover_schedule(
    network: ChargerNetwork,
    *,
    start_slot: int = 0,
    schedule: Schedule | None = None,
) -> Schedule:
    """GreedyCover baseline (paper §7.2).

    Per slot, each charger selects the dominant task set covering the most
    *currently active* tasks; ties break to the lower policy index (the one
    Algorithm 1's sweep emits first), zero coverage stays idle.
    """
    sched = schedule if schedule is not None else Schedule(network)
    for i in range(network.n):
        p_count = network.policy_count(i)
        if p_count <= 1:
            continue
        cover = network.cover_masks[i]  # (P_i, m)
        for k in range(start_slot, network.num_slots):
            counts = cover @ network.active[:, k]  # (P_i,)
            best_p = int(np.argmax(counts))
            if best_p != IDLE_POLICY and counts[best_p] > 0:
                sched.set(i, k, best_p)
    return sched


def random_schedule(
    network: ChargerNetwork, rng: np.random.Generator
) -> Schedule:
    """Uniformly random non-idle policy at every relevant slot (ablation)."""
    sched = Schedule(network)
    for i in range(network.n):
        p_count = network.policy_count(i)
        if p_count <= 1:
            continue
        for k in network.relevant_slots(i):
            sched.set(i, int(k), int(rng.integers(1, p_count)))
    return sched


def static_orientation_schedule(
    network: ChargerNetwork,
    *,
    utility: UtilityFunction | None = None,
) -> Schedule:
    """One fixed orientation per charger for the whole horizon (ablation).

    Chooses, independently per charger, the policy whose *total* utility
    gain over all slots (own-energy accounting, as in GreedyUtility) is
    largest, then holds it.  The gap to HASTE quantifies how much of the
    paper's benefit comes from re-orientation over time versus good static
    aiming.
    """
    objective = HasteObjective(network, utility)
    sched = Schedule(network)
    for i in range(network.n):
        p_count = network.policy_count(i)
        if p_count <= 1:
            continue
        slots = network.relevant_slots(i)
        if slots.size == 0:
            continue
        best_p, best_total = IDLE_POLICY, MIN_GAIN
        for p in range(1, p_count):
            energies = objective.zero_energy()
            total = 0.0
            for k in slots:
                add = objective.added_energy(i, int(k))[p]
                total += float(
                    objective.utility.gain(energies, add) @ objective.weights
                )
                energies += add
            if total > best_total:
                best_p, best_total = p, total
        if best_p != IDLE_POLICY:
            for k in slots:
                sched.set(i, int(k), best_p)
    return sched
