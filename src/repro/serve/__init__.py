"""Scheduling-as-a-service: the warm-state engine + asyncio daemon.

The serving layer the PR 3 registry/`Instance`/`RunArtifact` stack was
built to unlock (ROADMAP top item): a long-lived process that accepts
serialized instances (or sample descriptors) over HTTP/JSON and returns
full :class:`~repro.solvers.artifact.RunArtifact` payloads, never
recomputing per-network state on the hot path.

Layers (see DESIGN.md §12–13):

* :mod:`repro.serve.engine` — :class:`ScheduleEngine`: bounded request
  queue, supervised worker threads resolving spec strings locally, the
  shared prepared-state cache, a ``content_hash × spec × seed`` result
  cache (the idempotency key), per-spec circuit breakers, and the
  graceful-degradation ladder;
* :mod:`repro.serve.resilience` — the shared vocabulary: ``Deadline``,
  ``CancelToken``/``cooperative_sleep``, ``RetryPolicy`` (exponential
  backoff + full jitter), ``CircuitBreaker``, ``DegradationLadder``;
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`: stdlib-asyncio
  HTTP/1.1 listener (``/healthz``, ``/solvers``, ``/stats``, ``/solve``)
  with a per-request watchdog and a graceful drain mode;
* :mod:`repro.serve.protocol` — request/response schemas;
* :mod:`repro.serve.client` — a stdlib client with typed failures and
  retrying ``solve_with_retries``.

Quick start::

    from repro.serve import ScheduleEngine, start_in_thread, ServeClient
    engine = ScheduleEngine(workers=2, default_deadline_s=5.0)
    with start_in_thread(engine) as handle:
        client = ServeClient(port=handle.port)
        status, reply = client.solve_with_retries(
            spec="haste-offline:c=2", sample={"scale": "quick", "seed": 7}
        )
    engine.close()

or from a shell: ``repro-haste serve --port 8642 --deadline 5``.
"""

from .client import ServeClient, ServeProtocolError, ServeUnavailable
from .daemon import DaemonHandle, ServeDaemon, start_in_thread
from .engine import EngineBusy, EngineClosed, ScheduleEngine, ServeResult
from .protocol import (
    ProtocolError,
    SolveRequest,
    parse_solve_request,
    solve_response,
)
from .resilience import (
    BreakerOpen,
    CancelToken,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    DegradationLadder,
    RequestQuarantined,
    RetryPolicy,
    WorkerCrashed,
    cooperative_sleep,
    default_degradation_rungs,
)

__all__ = [
    "ServeClient",
    "ServeProtocolError",
    "ServeUnavailable",
    "DaemonHandle",
    "ServeDaemon",
    "start_in_thread",
    "EngineBusy",
    "EngineClosed",
    "ScheduleEngine",
    "ServeResult",
    "ProtocolError",
    "SolveRequest",
    "parse_solve_request",
    "solve_response",
    "BreakerOpen",
    "CancelToken",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "DegradationLadder",
    "RequestQuarantined",
    "RetryPolicy",
    "WorkerCrashed",
    "cooperative_sleep",
    "default_degradation_rungs",
]
