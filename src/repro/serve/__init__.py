"""Scheduling-as-a-service: the warm-state engine + asyncio daemon.

The serving layer the PR 3 registry/`Instance`/`RunArtifact` stack was
built to unlock (ROADMAP top item): a long-lived process that accepts
serialized instances (or sample descriptors) over HTTP/JSON and returns
full :class:`~repro.solvers.artifact.RunArtifact` payloads, never
recomputing per-network state on the hot path.

Layers (see DESIGN.md §12):

* :mod:`repro.serve.engine` — :class:`ScheduleEngine`: bounded request
  queue, worker threads resolving spec strings locally, the shared
  prepared-state cache, and a ``content_hash × spec × seed`` result cache;
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`: stdlib-asyncio
  HTTP/1.1 listener (``/healthz``, ``/solvers``, ``/stats``, ``/solve``);
* :mod:`repro.serve.protocol` — request/response schemas;
* :mod:`repro.serve.client` — a stdlib client for harnesses and REPLs.

Quick start::

    from repro.serve import ScheduleEngine, start_in_thread, ServeClient
    engine = ScheduleEngine(workers=2)
    with start_in_thread(engine) as handle:
        client = ServeClient(port=handle.port)
        status, reply = client.solve(
            spec="haste-offline:c=2", sample={"scale": "quick", "seed": 7}
        )
    engine.close()

or from a shell: ``repro-haste serve --port 8642``.
"""

from .client import ServeClient
from .daemon import DaemonHandle, ServeDaemon, start_in_thread
from .engine import EngineBusy, EngineClosed, ScheduleEngine, ServeResult
from .protocol import (
    ProtocolError,
    SolveRequest,
    parse_solve_request,
    solve_response,
)

__all__ = [
    "ServeClient",
    "DaemonHandle",
    "ServeDaemon",
    "start_in_thread",
    "EngineBusy",
    "EngineClosed",
    "ScheduleEngine",
    "ServeResult",
    "ProtocolError",
    "SolveRequest",
    "parse_solve_request",
    "solve_response",
]
