"""Resilience primitives for the serving layer: deadlines, retries,
circuit breakers, and the graceful-degradation ladder.

PR 4 taught the *negotiation protocol* to survive lossy links and charger
crashes; this module gives the *service* fronting it the same discipline.
Four small, composable pieces (DESIGN.md §13):

* :class:`Deadline` — a monotonic-clock request budget.  Created once at
  submission, threaded through the engine into every solve attempt, and
  checked cooperatively at phase seams (dequeue, prepare, per-rung) so no
  request outlives its budget by more than the daemon's watchdog grace.
* :class:`CancelToken` + :func:`cooperative_sleep` — cooperative
  cancellation.  Injected slowdowns/stalls (and any other waiting the
  engine does) sleep *interruptibly*: the sleep wakes early when the
  token is cancelled or the deadline's degradation reserve is reached,
  which is what turns a 30 s stall into an on-time degraded answer.
* :class:`RetryPolicy` — exponential backoff with **full jitter** (AWS
  architecture-blog style: ``uniform(0, min(cap, base·2^attempt))``),
  seeded so client retry schedules are replayable in tests.
* :class:`CircuitBreaker` — the classic closed/open/half-open state
  machine, tracked **per canonical spec**.  Consecutive failures open the
  circuit; an open circuit routes requests straight to the degradation
  ladder (or refuses, when degradation is off) without burning a worker;
  after ``reset_timeout_s`` a limited number of half-open probes decide
  between closing and re-opening.
* :class:`DegradationLadder` — maps a spec to successively cheaper
  *registered* specs.  The default ladder first strips the spatial
  decomposition parameters (``shards``/``halo``/``shard_procs`` — the
  expensive fan-out), then falls back to the matching greedy baseline
  (``greedy-utility`` offline, ``online-greedy-utility`` online), so a
  deadline or breaker trip still returns a **valid, matroid-feasible
  schedule** tagged ``meta["degraded"]`` instead of an error.

Everything here is pure mechanism — no engine state, no HTTP — so the
engine, the daemon, the client, and the tests share one vocabulary.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from .. import obs

__all__ = [
    "BreakerOpen",
    "CancelToken",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "DegradationLadder",
    "RequestQuarantined",
    "RetryPolicy",
    "WorkerCrashed",
    "cooperative_sleep",
    "default_degradation_rungs",
]


class DeadlineExceeded(RuntimeError):
    """A request ran out of its monotonic budget (HTTP 504 when not
    degradable)."""


class WorkerCrashed(RuntimeError):
    """An engine worker died executing this request (HTTP 500 when not
    degradable)."""


class RequestQuarantined(RuntimeError):
    """This request previously crashed a worker and is quarantined
    (HTTP 500 when not degradable)."""


class BreakerOpen(RuntimeError):
    """The per-spec circuit breaker is open and no degradation is
    available (HTTP 503)."""


# ----------------------------------------------------------------------
# Deadlines and cooperative cancellation
# ----------------------------------------------------------------------
class Deadline:
    """A monotonic-clock request budget.

    ``reserve_s`` is the slice of the budget held back for the
    degradation ladder: cooperative waits abort once ``remaining()``
    drops to the reserve, leaving enough budget to still produce a
    (cheap, degraded) answer.  The clock is injectable for tests.
    """

    __slots__ = ("budget_s", "reserve_s", "_clock", "_t0")

    def __init__(
        self,
        budget_s: float,
        *,
        reserve_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not (budget_s > 0.0):
            raise ValueError(f"deadline budget must be > 0, got {budget_s}")
        self.budget_s = float(budget_s)
        if reserve_s is None:
            reserve_s = min(0.25 * self.budget_s, 0.25)
        self.reserve_s = float(reserve_s)
        self._clock = clock
        self._t0 = clock()

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.budget_s - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def in_reserve(self) -> bool:
        """True once only the degradation reserve (or less) is left."""
        return self.remaining() <= self.reserve_s

    def check(self, label: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is gone."""
        rem = self.remaining()
        if rem <= 0.0:
            raise DeadlineExceeded(
                f"{label} exceeded its {self.budget_s:g}s deadline "
                f"(over by {-rem:.3f}s)"
            )


class CancelToken:
    """A cooperative cancellation flag (one-shot, thread-safe)."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def cancel(self) -> None:
        self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until cancelled (or timeout); returns the cancel state."""
        return self._event.wait(timeout)


def cooperative_sleep(
    seconds: float,
    *,
    token: CancelToken | None = None,
    deadline: Deadline | None = None,
    tick_s: float = 0.02,
) -> bool:
    """Sleep up to ``seconds``, waking early on cancellation or when the
    deadline's degradation reserve is reached.

    Returns ``True`` when the full duration elapsed undisturbed and
    ``False`` when the sleep was interrupted — the caller decides whether
    an interruption means "degrade now" (injected stall) or "carry on"
    (injected slowdown that merely ran out of slack).
    """
    end = time.monotonic() + max(0.0, float(seconds))
    while True:
        now = time.monotonic()
        if now >= end:
            return True
        if token is not None and token.cancelled:
            return False
        if deadline is not None and deadline.in_reserve():
            return False
        chunk = min(tick_s, end - now)
        if token is not None:
            if token.wait(chunk):
                return False
        else:
            time.sleep(chunk)


# ----------------------------------------------------------------------
# Retry policy: exponential backoff + full jitter
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter, replayable when seeded.

    Attempt ``a`` (0-based) sleeps ``uniform(0, min(max_s, base_s·2^a))``
    — full jitter decorrelates a thundering herd of retrying clients,
    which is exactly the scenario the ``EngineBusy`` backpressure tests
    drive.  ``seed=None`` draws from a fresh OS-seeded generator.
    """

    retries: int = 4
    base_s: float = 0.05
    max_s: float = 2.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if not (self.base_s > 0.0):
            raise ValueError(f"base_s must be > 0, got {self.base_s}")
        if self.max_s < self.base_s:
            raise ValueError(
                f"max_s ({self.max_s}) must be >= base_s ({self.base_s})"
            )

    def delays(
        self, rng: np.random.Generator | None = None
    ) -> Iterator[float]:
        """The per-retry sleep durations (``retries`` values)."""
        if rng is None:
            rng = np.random.default_rng(self.seed)
        for attempt in range(self.retries):
            cap = min(self.max_s, self.base_s * (2.0**attempt))
            yield float(rng.uniform(0.0, cap))


# ----------------------------------------------------------------------
# Circuit breaker (per-spec, closed/open/half-open)
# ----------------------------------------------------------------------
#: Gauge codes exported per spec: 0 = closed, 1 = half-open, 2 = open.
_STATE_CODE = {"closed": 0, "half-open": 1, "open": 2}


class _BreakerEntry:
    __slots__ = ("state", "failures", "opened_at", "probes", "trips")

    def __init__(self) -> None:
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.probes = 0
        self.trips = 0


def _gauge_key(spec: str) -> str:
    """A metric-name-safe rendering of a canonical spec string."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in spec)


class CircuitBreaker:
    """Per-key (canonical spec) closed/open/half-open circuit breaker.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip the circuit open.
    * **open** — :meth:`allow` refuses until ``reset_timeout_s`` has
      elapsed since the trip, then admits up to ``half_open_max``
      half-open probes.
    * **half-open** — a probe success closes the circuit (failure count
      reset); a probe failure re-opens it and restarts the timeout.

    State changes are mirrored to :mod:`repro.obs` when enabled
    (``serve.breaker_trips`` counter, per-spec ``serve.breaker_state.*``
    gauges with 0/1/2 = closed/half-open/open).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if not (reset_timeout_s > 0.0):
            raise ValueError(
                f"reset_timeout_s must be > 0, got {reset_timeout_s}"
            )
        if half_open_max < 1:
            raise ValueError(f"half_open_max must be >= 1, got {half_open_max}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.half_open_max = int(half_open_max)
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: dict[str, _BreakerEntry] = {}

    def _entry(self, key: str) -> _BreakerEntry:
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _BreakerEntry()
        return entry

    def _export(self, key: str, entry: _BreakerEntry) -> None:
        if obs.enabled():
            obs.set_gauge(
                f"serve.breaker_state.{_gauge_key(key)}",
                _STATE_CODE[entry.state],
            )

    def allow(self, key: str) -> bool:
        """Whether a request for ``key`` may execute right now."""
        with self._lock:
            entry = self._entry(key)
            if entry.state == "closed":
                return True
            if entry.state == "open":
                if self._clock() - entry.opened_at < self.reset_timeout_s:
                    return False
                entry.state = "half-open"
                entry.probes = 0
                self._export(key, entry)
            # half-open: admit a bounded number of probes
            if entry.probes < self.half_open_max:
                entry.probes += 1
                return True
            return False

    def record_success(self, key: str) -> None:
        with self._lock:
            entry = self._entry(key)
            entry.failures = 0
            if entry.state != "closed":
                entry.state = "closed"
                entry.probes = 0
                self._export(key, entry)

    def record_failure(self, key: str) -> None:
        with self._lock:
            entry = self._entry(key)
            entry.failures += 1
            tripped = (
                entry.state == "half-open"
                or (
                    entry.state == "closed"
                    and entry.failures >= self.failure_threshold
                )
            )
            if tripped:
                entry.state = "open"
                entry.opened_at = self._clock()
                entry.trips += 1
                self._export(key, entry)
                if obs.enabled():
                    obs.inc("serve.breaker_trips")
                    obs.event(
                        "serve.breaker_open",
                        level="warning",
                        spec=key,
                        failures=entry.failures,
                    )

    def state(self, key: str) -> str:
        with self._lock:
            entry = self._entries.get(key)
            return entry.state if entry is not None else "closed"

    def snapshot(self) -> dict:
        """Per-spec breaker state for ``/stats``."""
        with self._lock:
            return {
                key: {
                    "state": entry.state,
                    "failures": entry.failures,
                    "trips": entry.trips,
                }
                for key, entry in self._entries.items()
            }


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
#: Spec parameters the first ladder rung strips: the spatial-decomposition
#: fan-out is the expensive, failure-prone part of a request, and
#: ``shards=1`` is pinned bit-identical in *shape* (same solver family).
_DECOMPOSITION_PARAMS = ("shards", "halo", "shard_procs")

#: Cheapest registered fallback per solver setting — the greedy baselines
#: are deterministic, near-instant, and matroid-feasible by construction.
_BASELINE_BY_SETTING = {
    "offline": "greedy-utility",
    "online": "online-greedy-utility",
}


def default_degradation_rungs(spec: str) -> tuple[str, ...]:
    """The default ladder for ``spec``: itself, then cheaper variants.

    1. the canonical spec itself (rung 0 — the primary);
    2. the same spec with ``shards``/``halo``/``shard_procs`` stripped
       (only when the request asked for decomposition);
    3. the greedy baseline matching the solver's setting.

    Every rung is validated against the registry here, at ladder-build
    time, so a degraded execution can never hit an unknown spec.
    """
    from ..solvers.registry import get_solver
    from ..solvers.spec import SolverSpec, parse_spec

    solver = get_solver(spec)
    canonical = solver.canonical()
    rungs = [canonical]
    parsed = parse_spec(canonical)
    stripped = {
        k: v
        for k, v in parsed.params.items()
        if k not in _DECOMPOSITION_PARAMS
    }
    if stripped != parsed.params:
        candidate = SolverSpec(parsed.name, stripped).canonical()
        rungs.append(get_solver(candidate).canonical())
    baseline = _BASELINE_BY_SETTING.get(solver.capabilities.setting)
    if baseline is not None and parsed.name != baseline:
        rungs.append(get_solver(baseline).canonical())
    # Drop accidental duplicates while preserving order.
    seen: set[str] = set()
    unique = [r for r in rungs if not (r in seen or seen.add(r))]
    return tuple(unique)


class DegradationLadder:
    """A cached spec → rungs mapping (rung 0 is always the spec itself)."""

    def __init__(
        self,
        fn: Callable[[str], tuple[str, ...]] = default_degradation_rungs,
    ) -> None:
        self._fn = fn
        self._lock = threading.Lock()
        self._cache: dict[str, tuple[str, ...]] = {}

    def rungs(self, canonical_spec: str) -> tuple[str, ...]:
        with self._lock:
            rungs = self._cache.get(canonical_spec)
        if rungs is None:
            rungs = tuple(self._fn(canonical_spec))
            if not rungs or rungs[0] != canonical_spec:
                rungs = (canonical_spec, *rungs)
            with self._lock:
                self._cache[canonical_spec] = rungs
        return rungs

    def fallbacks(self, canonical_spec: str) -> tuple[str, ...]:
        """The rungs below the primary (may be empty)."""
        return self.rungs(canonical_spec)[1:]
