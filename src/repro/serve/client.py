"""A minimal stdlib client for the scheduling daemon.

One connection per request (the daemon answers ``Connection: close``),
JSON in/out.  Used by the smoke/benchmark harnesses and handy from a
REPL; anything speaking HTTP works equally well — e.g. ::

    curl -s localhost:8642/healthz
    curl -s -X POST localhost:8642/solve \\
         -d '{"spec": "greedy-utility", "sample": {"scale": "quick", "seed": 7}}'

Failure taxonomy (PR 9): transport-level trouble raises
:class:`ServeUnavailable` (a ``ConnectionError``, so existing
``except OSError`` callers keep working) and non-JSON answers raise
:class:`ServeProtocolError` — callers can tell "the daemon is down"
from "the daemon is speaking garbage" without string-matching.

:meth:`ServeClient.solve_with_retries` layers the
:class:`~repro.serve.resilience.RetryPolicy` (exponential backoff, full
jitter) on top: it retries transport errors and 503 backpressure, and
relies on the engine's ``content_hash × spec × seed`` idempotency key —
a retried seeded request can never double-execute, the engine collapses
it onto the cache or the in-flight leader.
"""

from __future__ import annotations

import http.client
import json
import time

from .resilience import RetryPolicy

__all__ = ["ServeClient", "ServeProtocolError", "ServeUnavailable"]


class ServeUnavailable(ConnectionError):
    """The daemon could not be reached (connect/read/reset failure).

    Subclasses ``ConnectionError`` → ``OSError``, so pre-existing
    ``except (OSError, ...)`` readiness loops treat it as before.
    """


class ServeProtocolError(RuntimeError):
    """The daemon answered, but not with the JSON contract we expect."""


#: Status codes worth retrying: pure backpressure (503) and watchdog
#: timeouts (504) — the request may succeed (or degrade) on a later try.
RETRYABLE_STATUSES = (503, 504)


class ServeClient:
    """Talk to a running :class:`~repro.serve.daemon.ServeDaemon`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(self, method: str, path: str, payload=None) -> tuple[int, dict]:
        """One HTTP round trip → ``(status, decoded_json)``.

        Raises :class:`ServeUnavailable` when the daemon cannot be
        reached and :class:`ServeProtocolError` when the reply is not
        the JSON the protocol promises.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (ConnectionError, TimeoutError, OSError,
                    http.client.HTTPException) as exc:
                raise ServeUnavailable(
                    f"daemon at {self.host}:{self.port} unreachable for "
                    f"{method} {path}: {type(exc).__name__}: {exc}"
                ) from exc
            try:
                return response.status, json.loads(data or b"null")
            except json.JSONDecodeError as exc:
                raise ServeProtocolError(
                    f"daemon at {self.host}:{self.port} answered {method} "
                    f"{path} with non-JSON body ({len(data)} bytes): {exc}"
                ) from None
        finally:
            conn.close()

    def get(self, path: str) -> tuple[int, dict]:
        return self.request("GET", path)

    def post(self, path: str, payload) -> tuple[int, dict]:
        return self.request("POST", path, payload)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        status, payload = self.get("/healthz")
        if status != 200:
            raise ServeProtocolError(f"/healthz returned {status}: {payload}")
        return payload

    def solvers(self) -> dict:
        status, payload = self.get("/solvers")
        if status != 200:
            raise ServeProtocolError(f"/solvers returned {status}: {payload}")
        return payload["solvers"]

    def stats(self) -> dict:
        status, payload = self.get("/stats")
        if status != 200:
            raise ServeProtocolError(f"/stats returned {status}: {payload}")
        return payload

    def _solve_payload(
        self,
        *,
        spec: str | None,
        instance,
        sample: dict | None,
        seed: int | None,
        deadline_s: float | None = None,
        degrade: bool | None = None,
    ) -> dict:
        payload: dict = {}
        if spec is not None:
            payload["spec"] = spec
        if seed is not None:
            payload["seed"] = seed
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if degrade is not None:
            payload["degrade"] = degrade
        if instance is not None:
            payload["instance"] = (
                instance if isinstance(instance, dict) else instance.to_dict()
            )
        if sample is not None:
            payload["sample"] = sample
        return payload

    def solve(
        self,
        *,
        spec: str | None = None,
        instance=None,
        sample: dict | None = None,
        seed: int | None = None,
        deadline_s: float | None = None,
        degrade: bool | None = None,
    ) -> tuple[int, dict]:
        """POST /solve with either a serialized instance or a sample form.

        ``instance`` may be an :class:`~repro.solvers.instance.Instance`
        (serialized here) or an already-encoded payload dict.
        """
        return self.post(
            "/solve",
            self._solve_payload(
                spec=spec, instance=instance, sample=sample, seed=seed,
                deadline_s=deadline_s, degrade=degrade,
            ),
        )

    def solve_with_retries(
        self,
        *,
        spec: str | None = None,
        instance=None,
        sample: dict | None = None,
        seed: int | None = None,
        deadline_s: float | None = None,
        degrade: bool | None = None,
        policy: RetryPolicy | None = None,
        sleep=time.sleep,
    ) -> tuple[int, dict]:
        """``solve`` with exponential-backoff/full-jitter retries.

        Retries :class:`ServeUnavailable` and retryable statuses (503
        backpressure, 504 watchdog) up to ``policy.retries`` times.
        Safe for seeded requests by construction: the engine's
        idempotency key (``content_hash × spec × seed``) answers an
        exact repeat from its result cache or collapses it onto the
        in-flight execution, so a retry never double-executes.
        Returns the last ``(status, payload)``; re-raises the final
        :class:`ServeUnavailable` when the daemon never answered.
        """
        policy = policy or RetryPolicy()
        payload = self._solve_payload(
            spec=spec, instance=instance, sample=sample, seed=seed,
            deadline_s=deadline_s, degrade=degrade,
        )
        delays = policy.delays()
        attempts = policy.retries + 1
        last_error: ServeUnavailable | None = None
        result: tuple[int, dict] | None = None
        for attempt in range(attempts):
            try:
                result = self.post("/solve", payload)
                last_error = None
            except ServeUnavailable as exc:
                last_error = exc
                result = None
            if result is not None and result[0] not in RETRYABLE_STATUSES:
                return result
            if attempt + 1 < attempts:
                sleep(next(delays))
        if last_error is not None:
            raise last_error
        assert result is not None
        return result

    def wait_ready(self, timeout: float = 15.0) -> dict:
        """Poll ``/healthz`` until the daemon answers (boot helper)."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, RuntimeError) as exc:
                last = exc
                time.sleep(0.05)
        raise TimeoutError(f"daemon at {self.host}:{self.port} not ready: {last}")
