"""A minimal stdlib client for the scheduling daemon.

One connection per request (the daemon answers ``Connection: close``),
JSON in/out.  Used by the smoke/benchmark harnesses and handy from a
REPL; anything speaking HTTP works equally well — e.g. ::

    curl -s localhost:8642/healthz
    curl -s -X POST localhost:8642/solve \\
         -d '{"spec": "greedy-utility", "sample": {"scale": "quick", "seed": 7}}'
"""

from __future__ import annotations

import http.client
import json
import time

__all__ = ["ServeClient"]


class ServeClient:
    """Talk to a running :class:`~repro.serve.daemon.ServeDaemon`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(self, method: str, path: str, payload=None) -> tuple[int, dict]:
        """One HTTP round trip → ``(status, decoded_json)``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, json.loads(data or b"null")
        finally:
            conn.close()

    def get(self, path: str) -> tuple[int, dict]:
        return self.request("GET", path)

    def post(self, path: str, payload) -> tuple[int, dict]:
        return self.request("POST", path, payload)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        status, payload = self.get("/healthz")
        if status != 200:
            raise RuntimeError(f"/healthz returned {status}: {payload}")
        return payload

    def solvers(self) -> dict:
        status, payload = self.get("/solvers")
        if status != 200:
            raise RuntimeError(f"/solvers returned {status}: {payload}")
        return payload["solvers"]

    def stats(self) -> dict:
        status, payload = self.get("/stats")
        if status != 200:
            raise RuntimeError(f"/stats returned {status}: {payload}")
        return payload

    def solve(
        self,
        *,
        spec: str | None = None,
        instance=None,
        sample: dict | None = None,
        seed: int | None = None,
    ) -> tuple[int, dict]:
        """POST /solve with either a serialized instance or a sample form.

        ``instance`` may be an :class:`~repro.solvers.instance.Instance`
        (serialized here) or an already-encoded payload dict.
        """
        payload: dict = {}
        if spec is not None:
            payload["spec"] = spec
        if seed is not None:
            payload["seed"] = seed
        if instance is not None:
            payload["instance"] = (
                instance if isinstance(instance, dict) else instance.to_dict()
            )
        if sample is not None:
            payload["sample"] = sample
        return self.post("/solve", payload)

    def wait_ready(self, timeout: float = 15.0) -> dict:
        """Poll ``/healthz`` until the daemon answers (boot helper)."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, RuntimeError) as exc:
                last = exc
                time.sleep(0.05)
        raise TimeoutError(f"daemon at {self.host}:{self.port} not ready: {last}")
