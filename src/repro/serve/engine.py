"""The warm-state scheduling engine: queue, workers, caches.

:class:`ScheduleEngine` is the serving core the daemon (and the traffic
harness) sit on.  One engine holds:

* a **bounded request queue** — submissions beyond ``queue_limit`` are
  rejected immediately with :class:`EngineBusy` (the daemon maps that to
  HTTP 503), so a burst degrades to fast refusals instead of unbounded
  memory growth;
* a **worker pool** of threads, each resolving spec strings locally via
  :func:`~repro.solvers.registry.get_solver` — the same
  resolve-by-string-in-the-worker pattern :mod:`repro.sim.runner` uses
  across process boundaries;
* the **prepared-state cache** (:data:`~repro.solvers.prepared.
  PREPARED_CACHE`): requests for the same ``Instance.content_hash`` share
  one :class:`~repro.solvers.prepared.PreparedNetwork`, so the warm path
  skips network construction, objective binding, and tile slicing
  entirely;
* a **result cache** keyed by ``content_hash × canonical spec × seed``:
  an exact repeat of a seeded request is answered without solving at all
  (solves with no effective seed are never cached — they are
  rng-nondeterministic by construction).

Telemetry: the engine always feeds its own
:class:`~repro.obs.windows.WindowedHistogram` of request latency
(windowed per solver, readable via :meth:`ScheduleEngine.stats` and the
daemon's ``/stats``), and mirrors counters/gauges into :mod:`repro.obs`
when the global registry is enabled (``serve.requests``,
``serve.result_cache_hits``/``misses``, ``serve.rejected``,
``serve.queue_depth``, ``serve.request_latency``).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..obs.windows import WindowedHistogram
from ..solvers.artifact import RunArtifact
from ..solvers.prepared import PREPARED_CACHE
from ..solvers.registry import get_solver

__all__ = ["EngineBusy", "EngineClosed", "ServeResult", "ScheduleEngine"]

#: Windowed request-latency metric (window = solver name).
LATENCY_METRIC = "serve.request_latency"

_SHUTDOWN = object()


class EngineBusy(RuntimeError):
    """The bounded request queue is full (HTTP 503)."""


class EngineClosed(RuntimeError):
    """The engine has been closed; no further submissions are accepted."""


@dataclass(frozen=True)
class ServeResult:
    """One served solve: the artifact plus its serving provenance."""

    artifact: RunArtifact
    #: canonical spec string that produced the artifact
    spec: str
    #: ``Instance.content_hash`` of the solved instance
    instance_hash: str
    #: effective rng seed (request seed, else instance provenance seed)
    seed: int | None
    #: answered from the result cache (no solve ran)
    cached: bool
    #: prepared state was already warm for this content hash
    warm: bool
    #: in-worker seconds (0 for result-cache hits)
    solve_s: float
    #: seconds spent waiting in the bounded queue
    queued_s: float


@dataclass(frozen=True)
class _Job:
    spec: str
    instance: object
    seed: int | None
    config: object
    use_result_cache: bool


class ScheduleEngine:
    """Long-lived warm-state solver: submit requests, get artifacts."""

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_limit: int = 64,
        result_cache_capacity: int = 256,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.queue_limit = int(queue_limit)
        self._queue: queue.Queue = queue.Queue(maxsize=self.queue_limit)
        self._lock = threading.Lock()
        self._closed = False
        self._results: OrderedDict[tuple, tuple[RunArtifact, str]] = OrderedDict()
        self._result_capacity = int(result_cache_capacity)
        self._latency = WindowedHistogram(LATENCY_METRIC)
        # Lifetime counters (exported via stats() and the daemon /stats).
        self.requests = 0
        self.completed = 0
        self.errors = 0
        self.rejected = 0
        self.result_hits = 0
        self.result_misses = 0
        self.result_evictions = 0
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(int(workers))
        ]
        for t in self._workers:
            t.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: str,
        instance,
        *,
        seed: int | None = None,
        config=None,
        use_result_cache: bool = True,
    ) -> Future:
        """Enqueue one solve; returns a :class:`concurrent.futures.Future`.

        Raises :class:`EngineBusy` when the bounded queue is full and
        :class:`EngineClosed` after :meth:`close` — both *before* any work
        is done, which is what makes the backpressure cheap.
        """
        if self._closed:
            raise EngineClosed("engine is closed")
        fut: Future = Future()
        job = _Job(
            spec=spec,
            instance=instance,
            seed=seed,
            config=config,
            use_result_cache=use_result_cache,
        )
        try:
            self._queue.put_nowait((fut, job, time.perf_counter()))
        except queue.Full:
            with self._lock:
                self.rejected += 1
            if obs.enabled():
                obs.inc("serve.rejected")
            raise EngineBusy(
                f"request queue is full ({self.queue_limit} pending)"
            ) from None
        with self._lock:
            self.requests += 1
        if obs.enabled():
            obs.inc("serve.requests")
            obs.set_gauge("serve.queue_depth", self._queue.qsize())
        return fut

    def solve(
        self,
        spec: str,
        instance,
        *,
        seed: int | None = None,
        config=None,
        use_result_cache: bool = True,
        timeout: float | None = None,
    ) -> ServeResult:
        """Submit and wait — the synchronous convenience path."""
        return self.submit(
            spec,
            instance,
            seed=seed,
            config=config,
            use_result_cache=use_result_cache,
        ).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _SHUTDOWN:
                    return
                fut, job, enqueued = item
                if not fut.set_running_or_notify_cancel():
                    continue
                try:
                    fut.set_result(self._execute(job, enqueued))
                except BaseException as exc:
                    with self._lock:
                        self.errors += 1
                    if obs.enabled():
                        obs.inc("serve.errors")
                    fut.set_exception(exc)
            finally:
                self._queue.task_done()
                if obs.enabled():
                    obs.set_gauge("serve.queue_depth", self._queue.qsize())

    def _execute(self, job: _Job, enqueued: float) -> ServeResult:
        queued_s = time.perf_counter() - enqueued
        # Spec strings resolve in the worker (sim/runner.py's pattern) —
        # the canonical form is also the result-cache key component.
        solver = get_solver(job.spec)
        canonical = solver.canonical()
        instance = job.instance
        content = instance.content_hash()
        effective = job.seed if job.seed is not None else instance.seed

        key = (content, canonical, effective)
        cacheable = job.use_result_cache and effective is not None
        if cacheable:
            with self._lock:
                hit = self._results.get(key)
                if hit is not None:
                    self._results.move_to_end(key)
                    self.result_hits += 1
                    self.completed += 1
            if hit is not None:
                if obs.enabled():
                    obs.inc("serve.result_cache_hits")
                self._observe_latency(solver.name, queued_s)
                return ServeResult(
                    artifact=hit[0],
                    spec=canonical,
                    instance_hash=content,
                    seed=effective,
                    cached=True,
                    warm=True,
                    solve_s=0.0,
                    queued_s=queued_s,
                )
            with self._lock:
                self.result_misses += 1
            if obs.enabled():
                obs.inc("serve.result_cache_misses")

        start = time.perf_counter()
        prepared, warm = PREPARED_CACHE.get_or_prepare(instance)
        rng = np.random.default_rng(effective)
        config = job.config if job.config is not None else instance.config
        artifact = solver.solve_prepared(prepared, rng, config)
        solve_s = time.perf_counter() - start

        if cacheable:
            with self._lock:
                self._results[key] = (artifact, artifact.content_hash())
                while len(self._results) > self._result_capacity:
                    self._results.popitem(last=False)
                    self.result_evictions += 1
        with self._lock:
            self.completed += 1
        self._observe_latency(solver.name, queued_s + solve_s)
        return ServeResult(
            artifact=artifact,
            spec=canonical,
            instance_hash=content,
            seed=effective,
            cached=False,
            warm=warm,
            solve_s=solve_s,
            queued_s=queued_s,
        )

    def _observe_latency(self, window: str, seconds: float) -> None:
        with self._lock:
            self._latency.observe(seconds, window=window)
        if obs.enabled():
            obs.observe_windowed(LATENCY_METRIC, seconds, window=window)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Everything the daemon's ``/stats`` endpoint reports."""
        with self._lock:
            latency = self._latency.snapshot()
            result_cache = {
                "size": len(self._results),
                "capacity": self._result_capacity,
                "hits": self.result_hits,
                "misses": self.result_misses,
                "evictions": self.result_evictions,
            }
            counters = {
                "requests": self.requests,
                "completed": self.completed,
                "errors": self.errors,
                "rejected": self.rejected,
            }
        return {
            **counters,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.queue_limit,
            "workers": len(self._workers),
            "result_cache": result_cache,
            "prepared_cache": PREPARED_CACHE.info(),
            "latency": latency,
        }

    def clear_result_cache(self) -> None:
        with self._lock:
            self._results.clear()

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for t in self._workers:
                t.join()

    def __enter__(self) -> "ScheduleEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
