"""The warm-state scheduling engine: queue, workers, caches, resilience.

:class:`ScheduleEngine` is the serving core the daemon (and the traffic
harness) sit on.  One engine holds:

* a **bounded request queue** — submissions beyond ``queue_limit`` are
  rejected immediately with :class:`EngineBusy` (the daemon maps that to
  HTTP 503), so a burst degrades to fast refusals instead of unbounded
  memory growth;
* a **worker pool** of threads, each resolving spec strings locally via
  :func:`~repro.solvers.registry.get_solver`, plus a **supervisor**
  thread that detects crashed workers, restarts them, and counts the
  restarts (``serve.worker_restarts``) — a request that kills a worker
  is quarantined instead of wedging the queue;
* a **prepared-state cache**: requests for the same
  ``Instance.content_hash`` share one :class:`~repro.solvers.prepared.
  PreparedNetwork` — the process-global :data:`~repro.solvers.prepared.
  PREPARED_CACHE` by default, or a private cache when
  ``prepared_cache_capacity`` is given (so sizing one engine never
  evicts state other components rely on);
* a **result cache** keyed by ``content_hash × canonical spec × seed``
  — the serving layer's idempotency key: an exact repeat of a seeded
  request (a client retry after a lost response, say) is answered
  without solving again, and *concurrent* identical requests collapse
  single-flight onto one execution (``serve.inflight_dedup``).

Resilience (PR 9, DESIGN.md §13) threads through every request:

* **deadlines** — a per-request monotonic :class:`~repro.serve.
  resilience.Deadline` checked cooperatively at phase seams (dequeue,
  fault injection, prepare, per-rung), so no request outlives its budget
  beyond the daemon's watchdog grace;
* a per-spec **circuit breaker** (closed/open/half-open) that learns
  which specs are failing and routes around them;
* the **graceful-degradation ladder** — when the deadline, the breaker,
  or a quarantine trips, the request re-resolves to a cheaper registered
  spec (decomposition params stripped, then the greedy baseline) and
  returns a *valid* schedule tagged ``meta["degraded"]`` instead of an
  error;
* an optional seeded **process fault injector**
  (:class:`~repro.faults.process.ProcessFaultModel`) driving the chaos
  suite — a null (or absent) model leaves every request on the exact
  PR 8 path, bit for bit.

Micro-batch coalescing (PR 10, DESIGN.md §14): when a worker dequeues a
request for a solver registered with a batched kernel (``batch_fn``), it
opportunistically drains up to ``coalesce_max - 1`` already-queued
requests for the *same canonical spec and dtype* and answers the whole
group with one :meth:`~repro.solvers.registry.BoundSolver.
solve_prepared_batch` call.  At float64 the batched kernel is
bit-identical to per-request solves, so coalescing is invisible in the
artifacts (pinned by ``tests/test_serve.py``); only
``ServeResult.coalesced`` and the ``coalesced_batches``/
``coalesced_requests`` counters reveal it.  Degraded and skip-primary
resubmissions never coalesce, chaos runs (an active fault injector)
disable coalescing entirely, and result-cache hits, single-flight
dedup, quarantine, and deadline gates are applied per member exactly as
on the solo path.  ``submit(dtype=np.float32)`` opts a request into the
single-precision batched kernel; float32 results are cached under a
*distinct* result-cache key so they can never answer a float64 request.

Telemetry: the engine always feeds its own
:class:`~repro.obs.windows.WindowedHistogram` of request latency
(windowed per solver, readable via :meth:`ScheduleEngine.stats` and the
daemon's ``/stats``), and mirrors counters/gauges into :mod:`repro.obs`
when the global registry is enabled (``serve.requests``,
``serve.result_cache_hits``/``misses``, ``serve.rejected``,
``serve.queue_depth``, ``serve.request_latency``, ``serve.degraded``,
``serve.worker_restarts``, ``serve.breaker_*``, …).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..faults.process import InjectedWorkerCrash, ProcessFaultModel
from ..obs.windows import WindowedHistogram
from ..solvers.artifact import RunArtifact
from ..solvers.prepared import PREPARED_CACHE, PreparedCache
from ..solvers.registry import get_solver
from .resilience import (
    BreakerOpen,
    CancelToken,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    DegradationLadder,
    RequestQuarantined,
    WorkerCrashed,
    cooperative_sleep,
)

__all__ = ["EngineBusy", "EngineClosed", "ServeResult", "ScheduleEngine"]

#: Windowed request-latency metric (window = solver name).
LATENCY_METRIC = "serve.request_latency"

#: Poll cadence of a follower waiting on an identical in-flight leader —
#: between polls the follower checks its cancel token and deadline.
_FOLLOWER_POLL_S = 0.05

#: Hard bound on how long a *deadline-less* follower waits on a leader
#: before falling through to the degradation ladder — a wedged leader
#: must never pin follower worker threads along with its own.
FOLLOWER_MAX_WAIT_S = 30.0

_SHUTDOWN = object()


class EngineBusy(RuntimeError):
    """The bounded request queue is full (HTTP 503)."""


class EngineClosed(RuntimeError):
    """The engine is closed or draining; no further submissions."""


@dataclass(frozen=True)
class ServeResult:
    """One served solve: the artifact plus its serving provenance."""

    artifact: RunArtifact
    #: canonical spec string that produced the artifact (the degraded
    #: rung's spec when ``degraded``)
    spec: str
    #: ``Instance.content_hash`` of the solved instance
    instance_hash: str
    #: effective rng seed (request seed, else instance provenance seed)
    seed: int | None
    #: answered from the result cache (no solve ran)
    cached: bool
    #: prepared state was already warm for this content hash
    warm: bool
    #: in-worker seconds (0 for result-cache hits)
    solve_s: float
    #: seconds spent waiting in the bounded queue
    queued_s: float
    #: answered by waiting on an identical in-flight request
    deduped: bool = False
    #: the degradation ladder produced this (see ``artifact.meta["degraded"]``)
    degraded: bool = False
    #: the originally requested canonical spec, when ``degraded``
    degraded_from: str | None = None
    #: what tripped: ``deadline`` | ``breaker`` | ``crash`` | ``quarantine``
    #: | ``watchdog``
    degrade_reason: str | None = None
    #: answered by an opportunistic micro-batch (coalesced solve)
    coalesced: bool = False


@dataclass(frozen=True)
class _Job:
    spec: str
    instance: object
    seed: int | None
    config: object
    use_result_cache: bool
    deadline: Deadline | None = None
    token: CancelToken = field(default_factory=CancelToken)
    degrade: bool = True
    skip_primary: bool = False
    degrade_reason: str | None = None
    #: normalized np.dtype (float32) or None (float64 default path)
    dtype: object = None


class ScheduleEngine:
    """Long-lived warm-state solver: submit requests, get artifacts."""

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_limit: int = 64,
        result_cache_capacity: int = 256,
        prepared_cache_capacity: int | None = None,
        default_deadline_s: float | None = None,
        degradation=True,
        breaker=None,
        fault_model=None,
        supervise: bool = True,
        supervision_interval_s: float = 0.1,
        quarantine_after: int = 1,
        coalesce_max: int = 4,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if coalesce_max < 0:
            raise ValueError(
                f"coalesce_max must be >= 0, got {coalesce_max}"
            )
        if default_deadline_s is not None and not (default_deadline_s > 0):
            raise ValueError(
                f"default_deadline_s must be > 0, got {default_deadline_s}"
            )
        if quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.queue_limit = int(queue_limit)
        self.default_deadline_s = default_deadline_s
        self.quarantine_after = int(quarantine_after)
        #: micro-batch size cap — 0 or 1 disables coalescing entirely
        self.coalesce_max = int(coalesce_max)
        self.supervision_interval_s = float(supervision_interval_s)
        # `prepared_cache_capacity` scopes a *private* PreparedCache to
        # this engine; without it the engine shares the process-global
        # cache.  (Resizing the global here would silently change
        # eviction for every other engine/solver in the process.)
        if prepared_cache_capacity is not None:
            self._prepared_cache = PreparedCache(
                capacity=prepared_cache_capacity
            )
        else:
            self._prepared_cache = PREPARED_CACHE

        # Resilience collaborators.  `degradation=True` builds the default
        # ladder; `breaker=None` the default circuit breaker — pass False
        # to disable either (the PR 8 hot path is untouched either way:
        # a closed breaker and an untriggered ladder cost one dict lookup).
        if degradation is True:
            self._ladder: DegradationLadder | None = DegradationLadder()
        elif degradation in (False, None):
            self._ladder = None
        elif isinstance(degradation, DegradationLadder):
            self._ladder = degradation
        elif callable(degradation):
            self._ladder = DegradationLadder(degradation)
        else:
            raise TypeError(f"bad degradation argument {degradation!r}")
        if breaker is None:
            self._breaker: CircuitBreaker | None = CircuitBreaker()
        elif breaker is False:
            self._breaker = None
        elif isinstance(breaker, CircuitBreaker):
            self._breaker = breaker
        else:
            raise TypeError(f"bad breaker argument {breaker!r}")
        if fault_model is None:
            self._injector = None
        elif isinstance(fault_model, ProcessFaultModel):
            self._injector = (
                None if fault_model.is_null() else fault_model.injector()
            )
        elif hasattr(fault_model, "decide"):
            self._injector = fault_model  # injector (or replay) directly
        else:
            raise TypeError(f"bad fault_model argument {fault_model!r}")

        self._queue: queue.Queue = queue.Queue(maxsize=self.queue_limit)
        self._lock = threading.Lock()
        self._closed = False
        self._draining = False
        self._results: OrderedDict[tuple, tuple[RunArtifact, str]] = OrderedDict()
        self._result_capacity = int(result_cache_capacity)
        self._inflight: dict[tuple, Future] = {}
        self._quarantine: dict[tuple, int] = {}
        self._latency = WindowedHistogram(LATENCY_METRIC)
        # Lifetime counters (exported via stats() and the daemon /stats).
        self.requests = 0
        self.completed = 0
        self.errors = 0
        self.rejected = 0
        self.result_hits = 0
        self.result_misses = 0
        self.result_evictions = 0
        self.solves = 0
        self.degraded = 0
        self.deadline_expired = 0
        self.deadline_timeouts = 0
        self.worker_crashes = 0
        self.worker_restarts = 0
        self.inflight_dedup = 0
        self.coalesced_batches = 0
        self.coalesced_requests = 0
        #: worker thread idents that must exit after their current item
        #: (a coalescing drain consumed their _SHUTDOWN sentinel)
        self._deferred_exit: set[int] = set()
        self._stop = threading.Event()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(int(workers))
        ]
        for t in self._workers:
            t.start()
        self._supervisor: threading.Thread | None = None
        if supervise:
            self._supervisor = threading.Thread(
                target=self._supervise_loop, name="serve-supervisor", daemon=True
            )
            self._supervisor.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: str,
        instance,
        *,
        seed: int | None = None,
        config=None,
        use_result_cache: bool = True,
        deadline_s: float | None = None,
        degrade: bool = True,
        skip_primary: bool = False,
        degrade_reason: str | None = None,
        dtype=None,
    ) -> Future:
        """Enqueue one solve; returns a :class:`concurrent.futures.Future`.

        Raises :class:`EngineBusy` when the bounded queue is full and
        :class:`EngineClosed` after :meth:`close` or during
        :meth:`drain` — both *before* any work is done, which is what
        makes the backpressure cheap.  ``deadline_s`` starts this
        request's monotonic budget **now** (queueing time counts);
        ``None`` falls back to the engine's ``default_deadline_s``.
        ``skip_primary`` jumps straight to the degradation ladder (the
        daemon uses it to re-route a request whose primary execution
        crashed a worker or tripped the watchdog).  ``dtype=np.float32``
        opts into the single-precision batched kernel (batched solvers
        only; see DESIGN.md §14) — float32 results live under a distinct
        result-cache key, never answering a float64 request.
        """
        if self._closed or self._draining:
            raise EngineClosed(
                "engine is draining" if self._draining else "engine is closed"
            )
        if dtype is not None:
            dtype = np.dtype(dtype)
            if dtype == np.dtype(np.float64):
                dtype = None  # the default path — one cache key, not two
            elif dtype != np.dtype(np.float32):
                raise ValueError(
                    f"dtype must be float64 or float32, got {dtype}"
                )
        budget = deadline_s if deadline_s is not None else self.default_deadline_s
        deadline = Deadline(budget) if budget is not None else None
        fut: Future = Future()
        token = CancelToken()
        fut.cancel_token = token  # cooperative-cancel handle for the daemon
        job = _Job(
            spec=spec,
            instance=instance,
            seed=seed,
            config=config,
            use_result_cache=use_result_cache,
            deadline=deadline,
            token=token,
            degrade=degrade,
            skip_primary=skip_primary,
            degrade_reason=degrade_reason,
            dtype=dtype,
        )
        try:
            self._queue.put_nowait((fut, job, time.perf_counter()))
        except queue.Full:
            with self._lock:
                self.rejected += 1
            if obs.enabled():
                obs.inc("serve.rejected")
            raise EngineBusy(
                f"request queue is full ({self.queue_limit} pending)"
            ) from None
        with self._lock:
            self.requests += 1
        if obs.enabled():
            obs.inc("serve.requests")
            obs.set_gauge("serve.queue_depth", self._queue.qsize())
        return fut

    def solve(
        self,
        spec: str,
        instance,
        *,
        seed: int | None = None,
        config=None,
        use_result_cache: bool = True,
        timeout: float | None = None,
        deadline_s: float | None = None,
        degrade: bool = True,
        dtype=None,
    ) -> ServeResult:
        """Submit and wait — the synchronous convenience path."""
        return self.submit(
            spec,
            instance,
            seed=seed,
            config=config,
            use_result_cache=use_result_cache,
            deadline_s=deadline_s,
            degrade=degrade,
            dtype=dtype,
        ).result(timeout=timeout)

    def note_deadline_timeout(self, spec: str) -> None:
        """Record a daemon-side watchdog expiry against ``spec``.

        The stuck worker cannot be interrupted (threads), but the breaker
        learns: enough watchdog trips open the circuit and subsequent
        requests for the spec degrade immediately instead of queueing
        behind a pathological solve.
        """
        try:
            canonical = get_solver(spec).canonical()
        except Exception:
            canonical = str(spec)
        with self._lock:
            self.deadline_timeouts += 1
        if self._breaker is not None:
            self._breaker.record_failure(canonical)
        if obs.enabled():
            obs.inc("serve.deadline_timeouts")

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            died = False
            try:
                if item is _SHUTDOWN:
                    return
                fut, job, enqueued = item
                if not fut.set_running_or_notify_cancel():
                    continue
                try:
                    fut.set_result(self._execute(job, enqueued, fut))
                except Exception as exc:
                    with self._lock:
                        self.errors += 1
                    if obs.enabled():
                        obs.inc("serve.errors")
                    fut.set_exception(exc)
                except BaseException as exc:
                    # A worker-killing crash: answer/requeue the poisoning
                    # request, quarantine it, and let this thread die
                    # (quietly — the supervisor restarts a replacement).
                    self._note_poison(fut, job, enqueued, exc)
                    died = True
                finally:
                    with self._lock:
                        key = getattr(fut, "_engine_key", None)
                        if key is not None and self._inflight.get(key) is fut:
                            del self._inflight[key]
            finally:
                self._queue.task_done()
                if obs.enabled():
                    obs.set_gauge("serve.queue_depth", self._queue.qsize())
            if died or self._check_deferred_exit():
                return

    def _check_deferred_exit(self) -> bool:
        """Whether this worker consumed a _SHUTDOWN while coalescing."""
        ident = threading.get_ident()
        with self._lock:
            if ident in self._deferred_exit:
                self._deferred_exit.discard(ident)
                return True
        return False

    def _note_poison(self, fut: Future, job: _Job, enqueued, exc) -> None:
        """Handle a request that killed its worker (quarantine + answer)."""
        key = getattr(fut, "_engine_key", None)
        with self._lock:
            self.worker_crashes += 1
            self.errors += 1
            quarantined = False
            if key is not None:
                self._quarantine[key] = self._quarantine.get(key, 0) + 1
                quarantined = self._quarantine[key] >= self.quarantine_after
        if obs.enabled():
            obs.inc("serve.worker_crashes")
            obs.event(
                "serve.worker_crash",
                level="error",
                spec=job.spec,
                error=repr(exc),
                quarantined=quarantined,
            )
        crash_error = WorkerCrashed(
            f"worker died executing {job.spec!r}: {type(exc).__name__}: {exc}"
        )
        if job.degrade and self._ladder is not None and not job.skip_primary:
            # Re-route the poisoned request to the degradation ladder on a
            # fresh future bridged back onto the caller's — the restarted
            # pool answers it degraded instead of 500.
            retry_fut: Future = Future()
            retry_fut.cancel_token = job.token
            retry_job = _Job(
                spec=job.spec,
                instance=job.instance,
                seed=job.seed,
                config=job.config,
                use_result_cache=job.use_result_cache,
                deadline=job.deadline,
                token=job.token,
                degrade=True,
                skip_primary=True,
                degrade_reason="crash",
            )

            def _bridge(done: Future) -> None:
                err = done.exception()
                if err is not None:
                    fut.set_exception(err)
                else:
                    fut.set_result(done.result())

            retry_fut.add_done_callback(_bridge)
            try:
                self._queue.put_nowait((retry_fut, retry_job, enqueued))
                return
            except queue.Full:
                pass
        fut.set_exception(crash_error)

    def _is_quarantined(self, key: tuple) -> bool:
        with self._lock:
            return self._quarantine.get(key, 0) >= self.quarantine_after

    def _supervise_loop(self) -> None:
        interval = max(0.01, self.supervision_interval_s)
        while not self._stop.wait(interval):
            if self._closed:
                return
            with self._lock:
                snapshot = list(enumerate(self._workers))
            for i, t in snapshot:
                if t.is_alive():
                    continue
                replacement = threading.Thread(
                    target=self._worker_loop, name=t.name, daemon=True
                )
                with self._lock:
                    if self._closed or self._workers[i] is not t:
                        continue
                    self._workers[i] = replacement
                    self.worker_restarts += 1
                replacement.start()
                if obs.enabled():
                    obs.inc("serve.worker_restarts")
                    obs.event(
                        "serve.worker_restart", level="warning", worker=t.name
                    )

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    def _execute(self, job: _Job, enqueued: float, fut: Future) -> ServeResult:
        queued_s = time.perf_counter() - enqueued
        # Spec strings resolve in the worker (sim/runner.py's pattern) —
        # the canonical form is also the result-cache key component.
        solver = get_solver(job.spec)
        canonical = solver.canonical()
        instance = job.instance
        content = instance.content_hash()
        effective = job.seed if job.seed is not None else instance.seed

        key = self._result_key(content, canonical, effective, job.dtype)
        fut._engine_key = key  # poison quarantine + in-flight cleanup
        # A degrade-only resubmission (worker crash / daemon watchdog)
        # bypasses the result cache *and* single-flight dedup: its key is
        # the very request it replaces, so following that (possibly
        # wedged) leader would block instead of degrading.
        cacheable = (
            job.use_result_cache
            and effective is not None
            and not job.skip_primary
        )
        if cacheable:
            with self._lock:
                hit = self._results.get(key)
                if hit is not None:
                    self._results.move_to_end(key)
                    self.result_hits += 1
                    self.completed += 1
            if hit is not None:
                if obs.enabled():
                    obs.inc("serve.result_cache_hits")
                self._observe_latency(solver.name, queued_s)
                return ServeResult(
                    artifact=hit[0],
                    spec=canonical,
                    instance_hash=content,
                    seed=effective,
                    cached=True,
                    warm=True,
                    solve_s=0.0,
                    queued_s=queued_s,
                )
            with self._lock:
                self.result_misses += 1
            if obs.enabled():
                obs.inc("serve.result_cache_misses")

        # Single-flight: concurrent identical seeded requests collapse
        # onto one execution — the idempotency guarantee retrying clients
        # rely on (no request is ever double-executed).
        if cacheable:
            with self._lock:
                leader = self._inflight.get(key)
                if leader is None or leader is fut or leader.done():
                    self._inflight[key] = fut
                    leader = None
            if leader is not None:
                return self._await_leader(
                    leader, job, solver, canonical, content, effective,
                    queued_s,
                )

        return self._solve_job(
            job, solver, canonical, instance, content, effective, key,
            cacheable, queued_s,
        )

    def _await_leader(
        self, leader, job: _Job, solver, canonical, content, effective,
        queued_s,
    ) -> ServeResult:
        """Wait on an identical in-flight request's result — *bounded*.

        The wait polls instead of blocking: between polls the follower
        checks its cancel token and deadline, and a deadline-less
        follower gives up after :data:`FOLLOWER_MAX_WAIT_S`, so a wedged
        leader never pins follower worker threads along with its own.
        A stuck or cancelled wait falls through to the degradation
        ladder (typed :class:`DeadlineExceeded` when degradation is
        off).
        """
        with self._lock:
            self.inflight_dedup += 1
        if obs.enabled():
            obs.inc("serve.inflight_dedup")
        deadline, token = job.deadline, job.token
        budget = (
            max(deadline.remaining(), 0.01)
            if deadline is not None
            else FOLLOWER_MAX_WAIT_S
        )
        limit = time.monotonic() + budget
        while True:
            try:
                lead: ServeResult = leader.result(
                    timeout=min(
                        _FOLLOWER_POLL_S,
                        max(limit - time.monotonic(), 0.001),
                    )
                )
                break
            except FutureTimeout:
                if not token.cancelled and time.monotonic() < limit:
                    continue
                reason = "watchdog" if token.cancelled else "deadline"
                if job.degrade and self._ladder is not None:
                    return self._solve_degraded(
                        job, canonical, job.instance, content, effective,
                        queued_s, reason,
                    )
                raise DeadlineExceeded(
                    f"gave up waiting on an identical in-flight request "
                    f"for {canonical} after {budget:.3f}s"
                ) from None
        with self._lock:
            self.completed += 1
        self._observe_latency(solver.name, queued_s)
        return ServeResult(
            artifact=lead.artifact,
            spec=lead.spec,
            instance_hash=content,
            seed=effective,
            cached=True,
            warm=True,
            solve_s=0.0,
            queued_s=queued_s,
            deduped=True,
            degraded=lead.degraded,
            degraded_from=lead.degraded_from,
            degrade_reason=lead.degrade_reason,
        )

    @staticmethod
    def _result_key(content, canonical, effective, dtype) -> tuple:
        """Result-cache / single-flight key for one request.

        The float64 key keeps its historical three-component shape;
        float32 requests get a fourth component so a single-precision
        artifact can never answer (or be answered by) a float64 request.
        """
        if dtype is not None:
            return (content, canonical, effective, "float32")
        return (content, canonical, effective)

    def _solve_job(
        self, job: _Job, solver, canonical, instance, content, effective,
        key, cacheable, queued_s, *, coalesce: bool = True,
    ) -> ServeResult:
        deadline, token = job.deadline, job.token
        degradable = job.degrade and self._ladder is not None
        reason: str | None = None
        if job.skip_primary:
            reason = job.degrade_reason or "crash"
        elif self._is_quarantined(key):
            if not degradable:
                raise RequestQuarantined(
                    f"request {content[:12]}×{canonical} previously crashed "
                    f"a worker and is quarantined"
                )
            reason = "quarantine"
        elif deadline is not None and deadline.expired():
            with self._lock:
                self.deadline_expired += 1
            if obs.enabled():
                obs.inc("serve.deadline_expired")
            if not degradable:
                deadline.check(canonical)  # raises DeadlineExceeded
            reason = "deadline"
        elif self._breaker is not None and not self._breaker.allow(canonical):
            if not degradable:
                raise BreakerOpen(f"circuit breaker open for {canonical}")
            reason = "breaker"

        if reason is None:
            if coalesce and self._coalesceable(job, solver):
                group = self._drain_followers()
                if group:
                    return self._solve_coalesced(
                        job, solver, canonical, content, effective, key,
                        cacheable, queued_s, group,
                    )
            start = time.perf_counter()
            try:
                artifact, warm = self._solve_once(
                    solver, canonical, instance, content, effective,
                    job.config, deadline, token, inject=True,
                    dtype=job.dtype,
                )
            except DeadlineExceeded:
                if self._breaker is not None:
                    self._breaker.record_failure(canonical)
                with self._lock:
                    self.deadline_expired += 1
                if obs.enabled():
                    obs.inc("serve.deadline_expired")
                if not degradable:
                    raise
                reason = "deadline"
            except InjectedWorkerCrash:
                if self._breaker is not None:
                    self._breaker.record_failure(canonical)
                raise
            except Exception:
                if self._breaker is not None:
                    self._breaker.record_failure(canonical)
                raise
            else:
                if self._breaker is not None:
                    self._breaker.record_success(canonical)
                solve_s = time.perf_counter() - start
                if cacheable:
                    with self._lock:
                        self._results[key] = (artifact, artifact.content_hash())
                        while len(self._results) > self._result_capacity:
                            self._results.popitem(last=False)
                            self.result_evictions += 1
                with self._lock:
                    self.completed += 1
                self._observe_latency(solver.name, queued_s + solve_s)
                return ServeResult(
                    artifact=artifact,
                    spec=canonical,
                    instance_hash=content,
                    seed=effective,
                    cached=False,
                    warm=warm,
                    solve_s=solve_s,
                    queued_s=queued_s,
                )

        return self._solve_degraded(
            job, canonical, instance, content, effective, queued_s, reason
        )

    # ------------------------------------------------------------------
    # Opportunistic micro-batch coalescing
    # ------------------------------------------------------------------
    def _coalesceable(self, job: _Job, solver) -> bool:
        """Whether this request may lead an opportunistic micro-batch.

        Chaos runs (an active fault injector) and degraded/skip-primary
        resubmissions never coalesce — those stay on the exact
        per-request path, bit for bit.
        """
        return (
            self.coalesce_max >= 2
            and self._injector is None
            and not job.skip_primary
            and job.degrade_reason is None
            and solver._batchable()
        )

    def _drain_followers(self) -> list[tuple]:
        """Non-blockingly drain up to ``coalesce_max - 1`` queued items.

        Every drained item is *owned* by the caller — answered in
        :meth:`_solve_coalesced` (batched, deduped, degraded, or run
        solo) and matched with one ``task_done`` there.  Nothing is ever
        put back, so a full queue can never deadlock the drain.  A
        drained ``_SHUTDOWN`` sentinel stops the drain and marks this
        worker for exit after the current group (close() is tearing
        down).
        """
        drained: list[tuple] = []
        limit = self.coalesce_max - 1
        while len(drained) < limit:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                self._queue.task_done()
                with self._lock:
                    self._deferred_exit.add(threading.get_ident())
                break
            drained.append(item)
        if drained and obs.enabled():
            obs.set_gauge("serve.queue_depth", self._queue.qsize())
        return drained

    def _run_drained(self, fut: Future, job: _Job, enqueued: float) -> None:
        """Answer one drained-but-uncoalescible item as the worker would.

        Mirrors the ``_worker_loop`` body: regular failures become the
        future's exception; a worker-killing crash quarantines/requeues
        via :meth:`_note_poison` and defers this worker's exit (the
        supervisor restarts a replacement).
        """
        if not fut.set_running_or_notify_cancel():
            return
        try:
            fut.set_result(self._execute(job, enqueued, fut))
        except Exception as exc:
            with self._lock:
                self.errors += 1
            if obs.enabled():
                obs.inc("serve.errors")
            fut.set_exception(exc)
        except BaseException as exc:
            self._note_poison(fut, job, enqueued, exc)
            with self._lock:
                self._deferred_exit.add(threading.get_ident())
        finally:
            with self._lock:
                key = getattr(fut, "_engine_key", None)
                if key is not None and self._inflight.get(key) is fut:
                    del self._inflight[key]

    def _solve_coalesced(
        self, job: _Job, solver, canonical, content, effective, key,
        cacheable, queued_s, drained,
    ) -> ServeResult:
        """Answer the leader plus a drained group with one batched solve.

        Each drained item is classified exactly as the solo path would
        have: different-spec/dtype (or resubmitted) items run solo after
        the batch; result-cache hits answer immediately; quarantined or
        deadline-expired members degrade; duplicates of an in-group key
        dedup onto the member's artifact; followers of an *external*
        in-flight leader wait on it.  The rest — distinct keys, same
        canonical spec and dtype — solve in one
        :meth:`~repro.solvers.registry.BoundSolver.solve_prepared_batch`
        call, bit-identical at float64 to per-member solves.  If the
        batched kernel raises, every member falls back to its own solo
        :meth:`_solve_job` (coalescing suppressed), so no request is
        lost to a batch failure.
        """
        now = time.perf_counter()
        # Members: the leader (fut None — its result is *returned*) plus
        # every coalesced follower.  Parallel per-member state.
        members: list[dict] = [
            dict(
                fut=None, job=job, content=content, effective=effective,
                key=key, cacheable=cacheable, queued_s=queued_s,
                result=None,
            )
        ]
        members_by_key: dict[tuple, int] = {key: 0} if cacheable else {}
        passthrough: list[tuple] = []  # (fut, job, enqueued) → _run_drained
        dups: list[tuple] = []         # (fut, content, effective, queued_s, idx)
        ext_waiters: list[tuple] = []  # (fut, job, leader_fut, content, eff, q)
        degrades: list[tuple] = []     # (fut, job, content, eff, q, reason)
        group_futs: list[Future] = []
        leader_exc: Exception | None = None
        pending_exc: BaseException | None = None
        try:
            for fut2, job2, enq2 in drained:
                queued2 = now - enq2
                eligible = (
                    not job2.skip_primary
                    and job2.degrade_reason is None
                    and job2.dtype == job.dtype
                )
                if eligible:
                    try:
                        eligible = get_solver(job2.spec).canonical() == canonical
                    except Exception:
                        eligible = False
                if not eligible:
                    passthrough.append((fut2, job2, enq2))
                    continue
                if not fut2.set_running_or_notify_cancel():
                    continue
                group_futs.append(fut2)
                instance2 = job2.instance
                try:
                    content2 = instance2.content_hash()
                except Exception as exc:
                    with self._lock:
                        self.errors += 1
                    if obs.enabled():
                        obs.inc("serve.errors")
                    fut2.set_exception(exc)
                    continue
                effective2 = (
                    job2.seed if job2.seed is not None else instance2.seed
                )
                key2 = self._result_key(
                    content2, canonical, effective2, job2.dtype
                )
                fut2._engine_key = key2
                cacheable2 = job2.use_result_cache and effective2 is not None
                if cacheable2:
                    with self._lock:
                        hit = self._results.get(key2)
                        if hit is not None:
                            self._results.move_to_end(key2)
                            self.result_hits += 1
                            self.completed += 1
                    if hit is not None:
                        if obs.enabled():
                            obs.inc("serve.result_cache_hits")
                        self._observe_latency(solver.name, queued2)
                        fut2.set_result(
                            ServeResult(
                                artifact=hit[0],
                                spec=canonical,
                                instance_hash=content2,
                                seed=effective2,
                                cached=True,
                                warm=True,
                                solve_s=0.0,
                                queued_s=queued2,
                            )
                        )
                        continue
                    with self._lock:
                        self.result_misses += 1
                    if obs.enabled():
                        obs.inc("serve.result_cache_misses")
                degradable2 = job2.degrade and self._ladder is not None
                if self._is_quarantined(key2):
                    if not degradable2:
                        with self._lock:
                            self.errors += 1
                        fut2.set_exception(
                            RequestQuarantined(
                                f"request {content2[:12]}×{canonical} "
                                f"previously crashed a worker and is "
                                f"quarantined"
                            )
                        )
                        continue
                    degrades.append(
                        (fut2, job2, content2, effective2, queued2,
                         "quarantine")
                    )
                    continue
                if job2.deadline is not None and job2.deadline.expired():
                    with self._lock:
                        self.deadline_expired += 1
                    if obs.enabled():
                        obs.inc("serve.deadline_expired")
                    if not degradable2:
                        with self._lock:
                            self.errors += 1
                        fut2.set_exception(
                            DeadlineExceeded(
                                f"deadline exceeded for {canonical} while "
                                f"queued for a coalesced solve"
                            )
                        )
                        continue
                    degrades.append(
                        (fut2, job2, content2, effective2, queued2,
                         "deadline")
                    )
                    continue
                if cacheable2:
                    dup_idx = members_by_key.get(key2)
                    if dup_idx is not None:
                        dups.append(
                            (fut2, content2, effective2, queued2, dup_idx)
                        )
                        continue
                    with self._lock:
                        leader2 = self._inflight.get(key2)
                        if leader2 is None or leader2.done():
                            self._inflight[key2] = fut2
                            leader2 = None
                    if leader2 is not None:
                        ext_waiters.append(
                            (fut2, job2, leader2, content2, effective2,
                             queued2)
                        )
                        continue
                idx = len(members)
                members.append(
                    dict(
                        fut=fut2, job=job2, content=content2,
                        effective=effective2, key=key2,
                        cacheable=cacheable2, queued_s=queued2,
                        result=None,
                    )
                )
                if cacheable2:
                    members_by_key[key2] = idx

            # --- the batched solve over every distinct member ---------
            batch_error: Exception | None = None
            artifacts: list[RunArtifact] = []
            warms: list[bool] = []
            start = time.perf_counter()
            try:
                prepareds, rngs, cfgs = [], [], []
                for mem in members:
                    prepared, warm = self._prepared_cache.get_or_prepare(
                        mem["job"].instance
                    )
                    prepareds.append(prepared)
                    warms.append(warm)
                    rngs.append(np.random.default_rng(mem["effective"]))
                    cfg = mem["job"].config
                    if cfg is None:
                        cfg = mem["job"].instance.config
                    cfgs.append(cfg)
                artifacts = solver.solve_prepared_batch(
                    prepareds, rngs, cfgs, dtype=job.dtype
                )
            except Exception as exc:
                batch_error = exc

            if batch_error is None:
                solve_s = time.perf_counter() - start
                with self._lock:
                    self.solves += len(members)
                    self.coalesced_batches += 1
                    self.coalesced_requests += len(members)
                if obs.enabled():
                    obs.inc("serve.coalesced_batches")
                    obs.inc("serve.coalesced_requests", len(members))
                for mem, artifact, warm in zip(members, artifacts, warms):
                    if self._breaker is not None:
                        self._breaker.record_success(canonical)
                    if mem["cacheable"]:
                        with self._lock:
                            self._results[mem["key"]] = (
                                artifact, artifact.content_hash(),
                            )
                            while len(self._results) > self._result_capacity:
                                self._results.popitem(last=False)
                                self.result_evictions += 1
                    with self._lock:
                        self.completed += 1
                    self._observe_latency(
                        solver.name, mem["queued_s"] + solve_s
                    )
                    res = ServeResult(
                        artifact=artifact,
                        spec=canonical,
                        instance_hash=mem["content"],
                        seed=mem["effective"],
                        cached=False,
                        warm=warm,
                        solve_s=solve_s,
                        queued_s=mem["queued_s"],
                        coalesced=True,
                    )
                    mem["result"] = res
                    if mem["fut"] is not None:
                        mem["fut"].set_result(res)
            else:
                # The batched kernel failed as a whole: charge the
                # breaker once, then answer every member with its own
                # solo solve (coalescing suppressed — no recursion).
                if self._breaker is not None:
                    self._breaker.record_failure(canonical)
                if obs.enabled():
                    obs.event(
                        "serve.coalesce_fallback",
                        level="warning",
                        spec=canonical,
                        batch=len(members),
                        error=repr(batch_error),
                    )
                for mem in members:
                    mjob = mem["job"]
                    try:
                        res = self._solve_job(
                            mjob, solver, canonical, mjob.instance,
                            mem["content"], mem["effective"], mem["key"],
                            mem["cacheable"], mem["queued_s"],
                            coalesce=False,
                        )
                    except Exception as exc:
                        if mem["fut"] is None:
                            leader_exc = exc
                        else:
                            with self._lock:
                                self.errors += 1
                            if obs.enabled():
                                obs.inc("serve.errors")
                            mem["fut"].set_exception(exc)
                        continue
                    mem["result"] = res
                    if mem["fut"] is not None:
                        mem["fut"].set_result(res)

            # --- in-group duplicates dedup onto their member ----------
            for fut2, content2, effective2, queued2, idx in dups:
                lead = members[idx]["result"]
                if lead is None:
                    # The member itself failed — give the duplicate its
                    # own solo attempt rather than inheriting the error.
                    mjob = members[idx]["job"]
                    try:
                        res = self._solve_job(
                            mjob, solver, canonical, mjob.instance,
                            content2, effective2, members[idx]["key"],
                            members[idx]["cacheable"], queued2,
                            coalesce=False,
                        )
                        fut2.set_result(res)
                    except Exception as exc:
                        with self._lock:
                            self.errors += 1
                        if obs.enabled():
                            obs.inc("serve.errors")
                        fut2.set_exception(exc)
                    continue
                with self._lock:
                    self.inflight_dedup += 1
                    self.completed += 1
                if obs.enabled():
                    obs.inc("serve.inflight_dedup")
                self._observe_latency(solver.name, queued2)
                fut2.set_result(
                    ServeResult(
                        artifact=lead.artifact,
                        spec=lead.spec,
                        instance_hash=content2,
                        seed=effective2,
                        cached=True,
                        warm=True,
                        solve_s=0.0,
                        queued_s=queued2,
                        deduped=True,
                        degraded=lead.degraded,
                        degraded_from=lead.degraded_from,
                        degrade_reason=lead.degrade_reason,
                        coalesced=lead.coalesced,
                    )
                )

            # --- followers of an external in-flight leader ------------
            for fut2, job2, leader2, content2, effective2, queued2 in \
                    ext_waiters:
                try:
                    fut2.set_result(
                        self._await_leader(
                            leader2, job2, solver, canonical, content2,
                            effective2, queued2,
                        )
                    )
                except Exception as exc:
                    with self._lock:
                        self.errors += 1
                    if obs.enabled():
                        obs.inc("serve.errors")
                    fut2.set_exception(exc)

            # --- members whose gates tripped degrade as usual ---------
            for fut2, job2, content2, effective2, queued2, reason2 in \
                    degrades:
                try:
                    fut2.set_result(
                        self._solve_degraded(
                            job2, canonical, job2.instance, content2,
                            effective2, queued2, reason2,
                        )
                    )
                except Exception as exc:
                    with self._lock:
                        self.errors += 1
                    if obs.enabled():
                        obs.inc("serve.errors")
                    fut2.set_exception(exc)

            # --- uncoalescible drained items run solo, in order -------
            for fut2, job2, enq2 in passthrough:
                self._run_drained(fut2, job2, enq2)
        except BaseException as exc:
            pending_exc = exc
            raise
        finally:
            # One task_done per drained item (the leader's own item is
            # accounted by the worker loop), in-flight cleanup for every
            # group future, and a safety sweep so no follower future is
            # ever left unresolved by an unexpected unwind.
            with self._lock:
                for fut2 in group_futs:
                    k2 = getattr(fut2, "_engine_key", None)
                    if k2 is not None and self._inflight.get(k2) is fut2:
                        del self._inflight[k2]
            for fut2 in group_futs:
                if not fut2.done():
                    with self._lock:
                        self.errors += 1
                    if obs.enabled():
                        obs.inc("serve.errors")
                    fut2.set_exception(
                        pending_exc
                        if pending_exc is not None
                        else RuntimeError("coalesced solve aborted")
                    )
            for _ in drained:
                self._queue.task_done()
            if obs.enabled():
                obs.set_gauge("serve.queue_depth", self._queue.qsize())

        if leader_exc is not None:
            raise leader_exc
        leader_result = members[0]["result"]
        assert leader_result is not None
        return leader_result

    def _solve_degraded(
        self, job: _Job, canonical, instance, content, effective,
        queued_s, reason: str,
    ) -> ServeResult:
        """Walk the ladder below ``canonical`` until a rung answers.

        Degraded rungs run **without** deadline checks or fault injection
        — the whole point is to return a valid schedule rather than fail,
        and the fallback rungs are cheap by construction.
        """
        fallbacks = (
            self._ladder.fallbacks(canonical) if self._ladder is not None else ()
        )
        last_error: Exception | None = None
        start = time.perf_counter()
        for rung_spec in fallbacks:
            rung = get_solver(rung_spec)
            rcanon = rung.canonical()
            if self._breaker is not None and not self._breaker.allow(rcanon):
                continue
            try:
                artifact, warm = self._solve_once(
                    rung, rcanon, instance, content, effective, job.config,
                    deadline=None, token=job.token, inject=False,
                )
            except Exception as exc:
                if self._breaker is not None:
                    self._breaker.record_failure(rcanon)
                last_error = exc
                continue
            if self._breaker is not None:
                self._breaker.record_success(rcanon)
            solve_s = time.perf_counter() - start
            artifact.meta["degraded"] = {
                "from": canonical,
                "to": rcanon,
                "reason": reason,
                "utility": float(artifact.total_utility),
            }
            with self._lock:
                self.degraded += 1
                self.completed += 1
            if obs.enabled():
                obs.inc("serve.degraded")
                obs.event(
                    "serve.degraded",
                    level="warning",
                    from_spec=canonical,
                    to_spec=rcanon,
                    reason=reason,
                )
            self._observe_latency(rung.name, queued_s + solve_s)
            return ServeResult(
                artifact=artifact,
                spec=rcanon,
                instance_hash=content,
                seed=effective,
                cached=False,
                warm=warm,
                solve_s=solve_s,
                queued_s=queued_s,
                degraded=True,
                degraded_from=canonical,
                degrade_reason=reason,
            )
        # Ladder exhausted (or absent): surface the trip as a typed error.
        if last_error is not None:
            raise last_error
        if reason == "deadline":
            raise DeadlineExceeded(
                f"deadline exceeded for {canonical} and no degradation rung "
                f"was available"
            )
        if reason in ("crash", "watchdog"):
            raise WorkerCrashed(
                f"primary execution of {canonical} crashed and no "
                f"degradation rung was available"
            )
        if reason == "quarantine":
            raise RequestQuarantined(
                f"request {content[:12]}×{canonical} is quarantined and no "
                f"degradation rung was available"
            )
        raise BreakerOpen(f"circuit breaker open for {canonical}")

    def _solve_once(
        self, solver, canonical, instance, content, effective, config,
        deadline: Deadline | None, token: CancelToken, *, inject: bool,
        dtype=None,
    ) -> tuple[RunArtifact, bool]:
        """One solve attempt: fault injection, prepare, solve.

        Identical to the PR 8 hot path when no deadline is set and the
        injector is absent — same call order, same rng construction.
        A float32 request routes through the batched kernel as a batch
        of one (non-batchable solvers surface the registry's
        SolverError).
        """
        if deadline is not None:
            deadline.check(canonical)
        if inject and self._injector is not None:
            fault = self._injector.decide(canonical, content)
            if fault.kind == "crash":
                raise InjectedWorkerCrash(
                    f"injected crash for {canonical} on {content[:12]}"
                )
            if fault.kind in ("slow", "stall"):
                finished = cooperative_sleep(
                    fault.seconds, token=token, deadline=deadline
                )
                if fault.kind == "stall" and not finished:
                    # The stall ate the budget down to the degradation
                    # reserve (or the daemon cancelled): degrade now.
                    raise DeadlineExceeded(
                        f"injected {fault.seconds:g}s stall interrupted for "
                        f"{canonical}"
                    )
            if deadline is not None:
                deadline.check(canonical)
        prepared, warm = self._prepared_cache.get_or_prepare(instance)
        if deadline is not None:
            deadline.check(canonical)
        rng = np.random.default_rng(effective)
        cfg = config if config is not None else instance.config
        if dtype is not None:
            artifact = solver.solve_prepared_batch(
                [prepared], [rng], [cfg], dtype=dtype
            )[0]
        else:
            artifact = solver.solve_prepared(prepared, rng, cfg)
        with self._lock:
            self.solves += 1
        return artifact, warm

    def _observe_latency(self, window: str, seconds: float) -> None:
        with self._lock:
            self._latency.observe(seconds, window=window)
        if obs.enabled():
            obs.observe_windowed(LATENCY_METRIC, seconds, window=window)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Everything the daemon's ``/stats`` endpoint reports."""
        with self._lock:
            latency = self._latency.snapshot()
            result_cache = {
                "size": len(self._results),
                "capacity": self._result_capacity,
                "hits": self.result_hits,
                "misses": self.result_misses,
                "evictions": self.result_evictions,
            }
            counters = {
                "requests": self.requests,
                "completed": self.completed,
                "errors": self.errors,
                "rejected": self.rejected,
                "solves": self.solves,
                "degraded": self.degraded,
                "deadline_expired": self.deadline_expired,
                "deadline_timeouts": self.deadline_timeouts,
                "inflight_dedup": self.inflight_dedup,
                "coalesced_batches": self.coalesced_batches,
                "coalesced_requests": self.coalesced_requests,
                "worker_crashes": self.worker_crashes,
                "worker_restarts": self.worker_restarts,
                "quarantined": len(
                    [
                        1
                        for count in self._quarantine.values()
                        if count >= self.quarantine_after
                    ]
                ),
            }
            workers_alive = sum(1 for t in self._workers if t.is_alive())
        stats = {
            **counters,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.queue_limit,
            "coalesce_max": self.coalesce_max,
            "workers": len(self._workers),
            "workers_alive": workers_alive,
            "default_deadline_s": self.default_deadline_s,
            "degradation": self._ladder is not None,
            "result_cache": result_cache,
            "prepared_cache": self._prepared_cache.info(),
            "latency": latency,
        }
        if self._breaker is not None:
            stats["breaker"] = self._breaker.snapshot()
        if self._injector is not None:
            stats["faults"] = self._injector.stats()
        return stats

    def clear_result_cache(self) -> None:
        with self._lock:
            self._results.clear()

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Stop accepting new work; wait for queued + in-flight requests.

        Returns ``True`` when everything finished inside ``timeout_s``.
        The engine stays alive (stats remain readable) — call
        :meth:`close` afterwards for the final teardown.  The graceful
        SIGTERM path of ``repro-haste serve`` is: stop the listener,
        ``drain(deadline)``, ``close()``, exit 0.
        """
        self._draining = True
        end = time.monotonic() + max(0.0, float(timeout_s))
        # `unfinished_tasks` counts puts not yet matched by task_done(),
        # which workers call only after fully answering a request — so a
        # dequeued-but-executing item still counts, with no window where
        # the engine looks idle mid-request.
        q = self._queue
        with q.all_tasks_done:
            while q.unfinished_tasks:
                remaining = end - time.monotonic()
                if remaining <= 0.0:
                    return False
                q.all_tasks_done.wait(remaining)
        return True

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._supervisor is not None and wait:
            self._supervisor.join(timeout=5)
        with self._lock:
            workers = list(self._workers)
        for _ in workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for t in workers:
                t.join(timeout=30)

    def __enter__(self) -> "ScheduleEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
