"""Wire protocol for the scheduling service (plain JSON over HTTP).

One request shape serves everything::

    POST /solve
    {
        "spec": "haste-offline:c=4",        # optional: daemon default spec
        "seed": 7,                           # optional: instance provenance seed
        "deadline_s": 2.0,                   # optional: per-request budget
        "degrade": true,                     # optional: allow ladder fallback
        "instance": { ... Instance.to_dict() ... }
        # — or, for quick experiments without shipping arrays —
        "sample": {"scale": "quick", "seed": 7}
    }

The response carries the full serialized :class:`RunArtifact` plus the
provenance the smoke tests assert on (artifact content hash, instance
hash, canonical spec, cache/warm flags).  Everything here is pure
translation — no solving, no state — so both the asyncio daemon and the
in-process tests share it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import SimulationConfig
from ..solvers.instance import Instance

__all__ = [
    "ProtocolError",
    "SolveRequest",
    "SCALES",
    "config_for_scale",
    "parse_solve_request",
    "solve_response",
]


class ProtocolError(ValueError):
    """A malformed request body (maps to HTTP 400)."""


#: Named instance scales for the ``sample`` request form — mirrors the
#: CLI's ``--config`` choices.
SCALES = ("quick", "small", "default", "paper")


def config_for_scale(scale: str) -> SimulationConfig:
    """The :class:`SimulationConfig` a ``sample.scale`` name denotes."""
    if scale == "quick":
        return SimulationConfig.quick()
    if scale == "small":
        return SimulationConfig.small_scale()
    if scale == "default":
        return SimulationConfig()
    if scale == "paper":
        return SimulationConfig.paper()
    raise ProtocolError(
        f"unknown sample scale {scale!r}; known: {', '.join(SCALES)}"
    )


@dataclass(frozen=True)
class SolveRequest:
    """One parsed, validated /solve request."""

    spec: str
    instance: Instance
    seed: int | None = None
    #: per-request monotonic budget in seconds (None → daemon default)
    deadline_s: float | None = None
    #: whether the graceful-degradation ladder may answer on a trip
    degrade: bool = True


def _parse_seed(value) -> int | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"seed must be an integer or null, got {value!r}")
    return int(value)


def _parse_deadline(value) -> float | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"deadline_s must be a positive number or null, got {value!r}"
        )
    deadline = float(value)
    if not (deadline > 0.0):
        raise ProtocolError(f"deadline_s must be > 0, got {value!r}")
    return deadline


def parse_solve_request(payload, *, default_spec: str) -> SolveRequest:
    """Validate a /solve body into a :class:`SolveRequest` (or raise 400)."""
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    spec = payload.get("spec", default_spec)
    if not isinstance(spec, str) or not spec:
        raise ProtocolError(f"spec must be a non-empty string, got {spec!r}")
    seed = _parse_seed(payload.get("seed"))
    deadline_s = _parse_deadline(payload.get("deadline_s"))
    degrade = payload.get("degrade", True)
    if not isinstance(degrade, bool):
        raise ProtocolError(f"degrade must be a boolean, got {degrade!r}")

    has_instance = "instance" in payload
    has_sample = "sample" in payload
    if has_instance == has_sample:
        raise ProtocolError(
            "request must carry exactly one of 'instance' or 'sample'"
        )
    if has_instance:
        try:
            instance = Instance.from_dict(payload["instance"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid instance payload: {exc}") from None
    else:
        sample = payload["sample"]
        if not isinstance(sample, dict):
            raise ProtocolError("'sample' must be an object with scale/seed")
        scale = sample.get("scale", "quick")
        if not isinstance(scale, str):
            raise ProtocolError(f"sample.scale must be a string, got {scale!r}")
        sample_seed = _parse_seed(sample.get("seed", 0))
        if sample_seed is None:
            raise ProtocolError("sample.seed must be an integer")
        instance = Instance.sample(config_for_scale(scale), sample_seed)
    return SolveRequest(
        spec=spec,
        instance=instance,
        seed=seed,
        deadline_s=deadline_s,
        degrade=degrade,
    )


def solve_response(result) -> dict:
    """The /solve response body for an engine :class:`ServeResult`.

    The degradation keys appear **only** on degraded results — a
    fault-free daemon's responses stay byte-identical to the pre-
    resilience wire format (the chaos suite pins this).
    """
    body = {
        "artifact": result.artifact.to_dict(),
        "artifact_hash": result.artifact.content_hash(),
        "spec": result.spec,
        "instance_hash": result.instance_hash,
        "seed": result.seed,
        "cached": bool(result.cached),
        "warm": bool(result.warm),
        "solve_s": float(result.solve_s),
        "queued_s": float(result.queued_s),
    }
    if getattr(result, "degraded", False):
        body["degraded"] = True
        body["degraded_from"] = result.degraded_from
        body["degrade_reason"] = result.degrade_reason
    return body
