"""The scheduling daemon: a long-lived asyncio HTTP/JSON front end.

Stdlib only — no FastAPI/aiohttp in the toolchain — so the daemon speaks
a deliberately small slice of HTTP/1.1 over ``asyncio.start_server``:
one request per connection, JSON bodies, ``Connection: close``.  The
shape follows the edge-EMS controller split the ROADMAP cites: the
:class:`~repro.serve.engine.ScheduleEngine` is the controller + thread
manager (queue, workers, caches), this module is the thin API listener,
and :mod:`repro.serve.protocol` is the schema layer.

Routes:

==============  ====================================================
``GET /healthz``   liveness + kernel mode
``GET /solvers``   every registered solver with capability summary
``GET /stats``     engine counters, cache stats, latency percentiles
``POST /solve``    solve request (see :mod:`repro.serve.protocol`)
==============  ====================================================

Status mapping: malformed body / unknown solver / bad params → 400,
unknown route → 404, wrong method → 405, bounded queue full (or breaker
open, or draining) → 503, deadline exhausted with degradation off → 504,
worker crash / quarantine / anything unexpected in the solver → 500.
Responses to ``/solve`` include the artifact's content hash so replay
harnesses can assert bit-identity without re-parsing arrays.

Resilience (DESIGN.md §13): every ``/solve`` with a deadline is guarded
by an **asyncio watchdog** — if the engine future outlives the budget
plus a small grace (a worker stuck in non-cooperative code), the daemon
cancels the request's token, records the timeout against the spec's
circuit breaker, and re-submits in degrade-only mode so the client still
gets a valid (tagged) schedule.  :meth:`ServeDaemon.begin_drain` flips
the daemon into drain mode: new ``/solve`` requests get 503 while
in-flight ones finish — the graceful-SIGTERM path of ``repro-haste
serve``.
"""

from __future__ import annotations

import asyncio
import json
import threading

from ..solvers.registry import REGISTRY, SolverError, get_solver
from ..solvers.spec import SpecError
from .engine import EngineBusy, EngineClosed, ScheduleEngine
from .protocol import ProtocolError, parse_solve_request, solve_response
from .resilience import (
    BreakerOpen,
    DeadlineExceeded,
    RequestQuarantined,
    WorkerCrashed,
)

__all__ = ["ServeDaemon", "DaemonHandle", "start_in_thread"]

#: Hard cap on request bodies (64 MiB ≈ a few-hundred-thousand-task
#: instance in JSON) — beyond this the daemon refuses rather than buffer.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Watchdog slack past the request budget before the daemon intervenes —
#: the engine's cooperative checks normally finish well inside this.
WATCHDOG_GRACE_S = 0.25

#: How long the degrade-only watchdog resubmission may take before the
#: daemon gives up with 504 (fallback rungs are near-instant greedy runs).
WATCHDOG_RETRY_S = 10.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _kernel_mode() -> str:
    from ..online import _ckernel

    return "compiled" if _ckernel.load() is not None else "numpy"


def _response_bytes(status: int, payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode()
    return head + body


class ServeDaemon:
    """One listening socket over one :class:`ScheduleEngine`."""

    def __init__(
        self,
        engine: ScheduleEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        default_spec: str = "haste-offline",
    ) -> None:
        # A bad default spec should fail at boot, not on the first request.
        get_solver(default_spec)
        self.engine = engine
        self.host = host
        self.port = int(port)
        self.default_spec = default_spec
        self._server: asyncio.AbstractServer | None = None
        self._draining = False

    def begin_drain(self) -> None:
        """Stop accepting new ``/solve`` work (503) while in-flight
        requests finish — step one of the graceful-shutdown ladder."""
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind the socket (resolves ``port=0`` to the chosen port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
            writer.write(_response_bytes(status, payload))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line {request_line!r}"}
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]

        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        raw_length = headers.get("content-length", "").strip() or "0"
        try:
            length = int(raw_length)
        except ValueError:
            return 400, {"error": f"invalid Content-Length {raw_length!r}"}
        if length < 0:
            return 400, {"error": f"invalid Content-Length {raw_length!r}"}
        if length > MAX_BODY_BYTES:
            return 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = await reader.readexactly(length) if length else b""

        if method == "GET":
            return self._get(path)
        if method == "POST":
            if path != "/solve":
                return 404, {"error": f"unknown path {path!r}"}
            return await self._solve(body)
        return 405, {"error": f"method {method} not allowed"}

    def _get(self, path: str) -> tuple[int, dict]:
        if path == "/healthz":
            return 200, {
                "status": "draining" if self._draining else "ok",
                "kernel": _kernel_mode(),
                "default_spec": self.default_spec,
            }
        if path == "/solvers":
            solvers = {
                name: {
                    "summary": REGISTRY.entry(name).capabilities.summary(),
                    "description": REGISTRY.entry(name).capabilities.description,
                    "defaults": {
                        k: v for k, v in REGISTRY.entry(name).defaults.items()
                    },
                }
                for name in REGISTRY.names()
            }
            return 200, {"solvers": solvers}
        if path == "/stats":
            return 200, self.engine.stats()
        return 404, {"error": f"unknown path {path!r}"}

    async def _solve(self, body: bytes) -> tuple[int, dict]:
        if self._draining:
            return 503, {"error": "daemon is draining; retry elsewhere"}
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        try:
            request = parse_solve_request(payload, default_spec=self.default_spec)
            get_solver(request.spec)  # reject bad specs before queueing
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        except (SpecError, SolverError) as exc:
            return 400, {"error": str(exc)}
        try:
            fut = self.engine.submit(
                request.spec,
                request.instance,
                seed=request.seed,
                deadline_s=request.deadline_s,
                degrade=request.degrade,
            )
        except (EngineBusy, EngineClosed) as exc:
            return 503, {"error": str(exc)}

        budget = (
            request.deadline_s
            if request.deadline_s is not None
            else self.engine.default_deadline_s
        )
        watchdog = (
            budget + max(WATCHDOG_GRACE_S, 0.25 * budget)
            if budget is not None
            else None
        )
        try:
            result = await asyncio.wait_for(asyncio.wrap_future(fut), watchdog)
        except asyncio.TimeoutError:
            # The worker blew past the budget *and* the grace — it is stuck
            # in non-cooperative code.  Cancel the token (wakes any
            # cooperative wait), charge the spec's breaker, and answer from
            # the degradation ladder on a fresh submission.
            token = getattr(fut, "cancel_token", None)
            if token is not None:
                token.cancel()
            self.engine.note_deadline_timeout(request.spec)
            return await self._solve_watchdogged(request)
        except DeadlineExceeded as exc:
            return 504, {"error": str(exc)}
        except (BreakerOpen, EngineClosed) as exc:
            return 503, {"error": str(exc)}
        except (WorkerCrashed, RequestQuarantined) as exc:
            return 500, {"error": str(exc)}
        except (SpecError, SolverError) as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive 500
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        return 200, solve_response(result)

    async def _solve_watchdogged(self, request) -> tuple[int, dict]:
        """Degrade-only retry after a watchdog expiry (or 504/500)."""
        if not request.degrade:
            return 504, {
                "error": (
                    f"request for {request.spec!r} exceeded its "
                    f"{request.deadline_s!r}s deadline (degradation disabled)"
                )
            }
        try:
            # skip_primary also bypasses the engine's result cache and
            # single-flight dedup — the retry's idempotency key matches
            # the wedged request it replaces, and following that leader
            # would block forever — and carries its own bounded deadline.
            fut = self.engine.submit(
                request.spec,
                request.instance,
                seed=request.seed,
                deadline_s=WATCHDOG_RETRY_S,
                skip_primary=True,
                degrade_reason="watchdog",
            )
        except (EngineBusy, EngineClosed) as exc:
            return 503, {"error": str(exc)}
        try:
            result = await asyncio.wait_for(
                asyncio.wrap_future(fut), WATCHDOG_RETRY_S
            )
        except asyncio.TimeoutError:
            return 504, {
                "error": (
                    f"request for {request.spec!r} timed out even on the "
                    f"degradation ladder"
                )
            }
        except Exception as exc:
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        return 200, solve_response(result)


class DaemonHandle:
    """A daemon running on a background thread (tests, benchmarks, CLI)."""

    def __init__(self, daemon: ServeDaemon, loop, thread: threading.Thread):
        self.daemon = daemon
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.daemon.host

    @property
    def port(self) -> int:
        return self.daemon.port

    def stop(self) -> None:
        """Stop the server and join the thread (idempotent)."""
        if self._thread.is_alive():
            async def _shutdown():
                await self.daemon.stop()
                self._loop.stop()

            self._loop.call_soon_threadsafe(asyncio.ensure_future, _shutdown())
            self._thread.join(timeout=10)

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_in_thread(
    engine: ScheduleEngine,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    default_spec: str = "haste-offline",
) -> DaemonHandle:
    """Boot a daemon on its own event-loop thread and wait until bound."""
    daemon = ServeDaemon(
        engine, host=host, port=port, default_spec=default_spec
    )
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    boot_error: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(daemon.start())
        except BaseException as exc:  # bind failures surface to the caller
            boot_error.append(exc)
            ready.set()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=_run, name="serve-daemon", daemon=True)
    thread.start()
    ready.wait(timeout=30)
    if boot_error:
        raise boot_error[0]
    return DaemonHandle(daemon, loop, thread)
