"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose pip/setuptools
cannot run PEP 660 editable builds (no ``wheel`` package available).
"""

from setuptools import setup

setup()
